// Package ocssd simulates an Open-Channel 2.0 SSD (§2.2 of the paper):
// a physical address space of groups × parallel units × chunks × logical
// blocks, vector read/write commands, chunk reset, device-side copy and
// a chunk report, on top of the NAND simulator. The device enforces the
// interface rules — writes land at the chunk write pointer in ws_min
// units, chunks are reset before rewrite — and abstracts planes and
// paired pages by buffering sub-stripe writes in controller DRAM until a
// full wordline stripe (ws_opt) can be programmed.
//
// Timing is virtual (internal/vclock): each group has a channel-bus
// resource and each PU a chip resource, so cross-group operations never
// interfere while same-group operations queue — exactly the isolation
// argument of §2.2 and §4.3.
//
// Concurrency mirrors the same isolation argument in wall-clock time:
// chunk metadata, stripe buffers and open-chunk accounting are sharded
// per parallel unit, so host threads driving disjoint PUs never contend
// on a device-wide lock (see DESIGN.md, "Per-PU locking"). Statistics
// are lock-free atomic counters. Virtual-time results are a pure
// function of the operation sequence and are unchanged by the sharding.
package ocssd

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/fault"
	"repro/internal/nand"
	"repro/internal/vclock"
)

// Errors reported by device commands.
var (
	ErrAddress      = errors.New("ocssd: address out of range")
	ErrWritePointer = errors.New("ocssd: write not at chunk write pointer")
	ErrWriteSize    = errors.New("ocssd: write size not a multiple of ws_min")
	ErrChunkState   = errors.New("ocssd: invalid chunk state for command")
	ErrChunkFull    = errors.New("ocssd: write beyond chunk capacity")
	ErrUnwritten    = errors.New("ocssd: read of unwritten sector")
	ErrOffline      = errors.New("ocssd: chunk is offline")
	ErrOpenLimit    = errors.New("ocssd: too many open chunks on parallel unit")
	ErrDataSize     = errors.New("ocssd: data length does not match sector count")
)

// ChunkState is the state machine of §2.2 / OCSSD 2.0 chunk reports.
type ChunkState uint8

// Chunk states.
const (
	ChunkFree ChunkState = iota
	ChunkOpen
	ChunkClosed
	ChunkOffline
)

func (s ChunkState) String() string {
	switch s {
	case ChunkFree:
		return "free"
	case ChunkOpen:
		return "open"
	case ChunkClosed:
		return "closed"
	case ChunkOffline:
		return "offline"
	default:
		return fmt.Sprintf("ChunkState(%d)", uint8(s))
	}
}

// ChunkInfo is one entry of the chunk report (get log page, §2.2).
type ChunkInfo struct {
	ID    ChunkID
	State ChunkState
	WP    int // write pointer: next writable sector
	Wear  int // reset count
}

// AsyncError is an asynchronous device notification (§2.2: bad media
// management and asynchronous error reporting).
type AsyncError struct {
	Chunk ChunkID
	Err   error
}

// Stats aggregates device-level operation counters.
type Stats struct {
	VectorWrites   int64
	VectorReads    int64
	Resets         int64
	Copies         int64
	SectorsWritten int64
	SectorsRead    int64
	CacheHitReads  int64
	MediaReads     int64
	PadSectors     int64
	GrownBadChunks int64
}

// devStats is the lock-free internal representation of Stats.
type devStats struct {
	vectorWrites   atomic.Int64
	vectorReads    atomic.Int64
	resets         atomic.Int64
	copies         atomic.Int64
	sectorsWritten atomic.Int64
	sectorsRead    atomic.Int64
	cacheHitReads  atomic.Int64
	mediaReads     atomic.Int64
	padSectors     atomic.Int64
	grownBadChunks atomic.Int64
}

func (s *devStats) snapshot() Stats {
	return Stats{
		VectorWrites:   s.vectorWrites.Load(),
		VectorReads:    s.vectorReads.Load(),
		Resets:         s.resets.Load(),
		Copies:         s.copies.Load(),
		SectorsWritten: s.sectorsWritten.Load(),
		SectorsRead:    s.sectorsRead.Load(),
		CacheHitReads:  s.cacheHitReads.Load(),
		MediaReads:     s.mediaReads.Load(),
		PadSectors:     s.padSectors.Load(),
		GrownBadChunks: s.grownBadChunks.Load(),
	}
}

// Options configures device construction.
type Options struct {
	Seed        int64
	Reliability nand.Reliability
	// Timing overrides the per-cell-type default when non-nil.
	Timing *nand.TimingProfile
	// PowerLossProtected keeps partially filled stripe buffers across a
	// Crash (capacitor-backed DRAM). Without it, un-programmed sectors
	// are lost on crash, which is what forces FTLs to use a WAL.
	PowerLossProtected bool
	// BackendPath enables the durable file backend: sector data persists
	// to this file and chunk-state transitions append to the companion
	// chunk-state log (LogPath). New formats the backend; OpenDevice
	// restores from it. Empty keeps the device purely in-memory, with
	// virtual timing identical either way.
	BackendPath string
	// Faults wires a deterministic fault injector into every media
	// operation (nil = fault-free).
	Faults *fault.Injector
}

// chunkMeta is the per-chunk controller record, packed to 24 bytes so a
// terabyte-scale geometry (512 PUs × thousands of chunks) keeps its whole
// chunk table in a few MiB of dense cache-friendly array. Two fields of
// the old 64-byte layout are gone, not shrunk: the partial-stripe buffer
// lives in the PU's slot table (bufSlot indexes it; open chunks are
// bounded by MaxOpenPerPU, total chunks are not), and the buffer's base
// sector is derived — bufBase = wp − len(buf)/sectorSize — because the
// write pointer always leads the buffer by exactly the buffered sectors.
type chunkMeta struct {
	flushEnd vclock.Time // latest NAND program completion for this chunk
	wp       int32       // write pointer: next writable sector
	wear     int32       // reset count
	bufSlot  int32       // index into the PU's stripe-buffer slots; -1 = none
	state    ChunkState
}

// puState is the per-parallel-unit shard of device state. Everything a
// write, read or reset touches on one PU — chunk metadata, the open-
// chunk count and the stripe-buffer slot table — lives behind this one
// mutex, so operations on distinct PUs never contend (§2.2: parallel
// units do not interfere across groups; here they do not even share a
// lock).
type puState struct {
	mu        sync.Mutex
	chunks    []chunkMeta
	open      int      // open chunk count on this PU
	bufs      [][]byte // stripe-buffer slots, indexed by chunkMeta.bufSlot
	freeSlots []int32  // recycled slot indices
}

// getSlot assigns a stripe-buffer slot to an opening chunk, recycling a
// released slot when one exists. Caller holds the PU lock.
func (p *puState) getSlot(stripeBytes int) int32 {
	if n := len(p.freeSlots); n > 0 {
		s := p.freeSlots[n-1]
		p.freeSlots = p.freeSlots[:n-1]
		p.bufs[s] = p.bufs[s][:0]
		return s
	}
	p.bufs = append(p.bufs, make([]byte, 0, stripeBytes))
	return int32(len(p.bufs) - 1)
}

// putSlot releases a chunk's stripe-buffer slot back to the free list.
// Negative slots (chunk had no buffer) are ignored. Caller holds the PU
// lock.
func (p *puState) putSlot(s int32) {
	if s >= 0 {
		p.freeSlots = append(p.freeSlots, s)
	}
}

// buffered returns the chunk's partial-stripe buffer (nil when the chunk
// holds no slot). Caller holds the PU lock.
func (p *puState) buffered(m *chunkMeta) []byte {
	if m.bufSlot < 0 {
		return nil
	}
	return p.bufs[m.bufSlot]
}

// Device is one simulated Open-Channel SSD.
type Device struct {
	geo  Geometry
	opts Options

	chips    [][]*nand.Chip       // [group][pu]
	channels []*vclock.Resource   // one bus per group
	chipRes  [][]*vclock.Resource // one resource per PU
	cache    *cacheTracker

	pus []puState // flat [group*PUsPerGroup + pu]

	// zeroStripe is one stripe of zero bytes shared by every pad path;
	// it is never written to.
	zeroStripe []byte

	// copyBufs recycles the staging buffers of device-side Copy.
	copyBufs sync.Pool

	// backend is the durable file store (nil = in-memory only); faults
	// is the injected-failure oracle (nil = fault-free).
	backend *backendStore
	faults  *fault.Injector

	stats devStats

	asyncC chan AsyncError

	faultMu     sync.Mutex
	faultEvents []FaultEvent
	// dieOnce gates the power-cut death sequence: concurrent media ops
	// may all observe the cut, but only one runs the PLP flush (which
	// takes every PU lock and must never run twice or race itself).
	dieOnce sync.Once
}

// New builds a device with the given geometry. The seed drives all
// failure injection; chips get distinct derived seeds. With
// Options.BackendPath the durable backend is formatted fresh; use
// OpenDevice to restore an existing backend instead.
func New(geo Geometry, opts Options) (*Device, error) {
	d, err := newDevice(geo, opts)
	if err != nil {
		return nil, err
	}
	if opts.BackendPath != "" {
		b, _, err := openBackend(opts.BackendPath, geo, true)
		if err != nil {
			return nil, err
		}
		d.backend = b
	}
	return d, nil
}

// OpenDevice brings a device up from an existing durable backend: the
// chunk-state log is scanned (torn tail truncated), every surviving
// chunk's state, write pointer and wear are restored, and the persisted
// sector data is re-programmed into the NAND model. Restore is a
// wall-clock-only operation; virtual time starts at zero as with New.
func OpenDevice(geo Geometry, opts Options) (*Device, error) {
	if opts.BackendPath == "" {
		return nil, errors.New("ocssd: OpenDevice requires Options.BackendPath")
	}
	d, err := newDevice(geo, opts)
	if err != nil {
		return nil, err
	}
	b, table, err := openBackend(opts.BackendPath, geo, false)
	if err != nil {
		return nil, err
	}
	d.backend = b
	if err := d.restore(table); err != nil {
		b.Close()
		return nil, err
	}
	return d, nil
}

func newDevice(geo Geometry, opts Options) (*Device, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	timing := nand.DefaultTiming(geo.Chip.Cell)
	if opts.Timing != nil {
		timing = *opts.Timing
	}
	d := &Device{
		geo:      geo,
		opts:     opts,
		chips:    make([][]*nand.Chip, geo.Groups),
		channels: make([]*vclock.Resource, geo.Groups),
		chipRes:  make([][]*vclock.Resource, geo.Groups),
		pus:      make([]puState, geo.Groups*geo.PUsPerGroup),
		asyncC:   make(chan AsyncError, 1024),
	}
	d.zeroStripe = make([]byte, geo.WSOpt*geo.Chip.SectorSize)
	var cacheBytes int64
	if geo.CacheMB > 0 {
		cacheBytes = int64(geo.CacheMB) << 20
		d.cache = newCacheTracker(cacheBytes)
	}
	for g := 0; g < geo.Groups; g++ {
		d.channels[g] = vclock.NewResource(fmt.Sprintf("ch%d", g))
		d.chips[g] = make([]*nand.Chip, geo.PUsPerGroup)
		d.chipRes[g] = make([]*vclock.Resource, geo.PUsPerGroup)
		for u := 0; u < geo.PUsPerGroup; u++ {
			seed := opts.Seed*1000003 + int64(g)*257 + int64(u) + 1
			chip, err := nand.New(geo.Chip, timing, opts.Reliability, seed)
			if err != nil {
				return nil, err
			}
			d.chips[g][u] = chip
			d.chipRes[g][u] = vclock.NewResource(fmt.Sprintf("chip%d.%d", g, u))
			pu := d.pu(g, u)
			pu.chunks = make([]chunkMeta, geo.ChunksPerPU)
			for c := range pu.chunks {
				pu.chunks[c].bufSlot = -1
				// A chunk is offline if any of its per-plane blocks is
				// factory bad (the chunk spans block c on every plane).
				for p := 0; p < geo.Chip.Planes; p++ {
					if chip.IsBad(p, c) {
						pu.chunks[c].state = ChunkOffline
						break
					}
				}
			}
		}
	}
	d.faults = opts.Faults
	return d, nil
}

// restore applies a chunk-state table recovered from the backend log:
// offline and wear carry over, and Open/Closed chunks get their data
// re-programmed stripe by stripe from the data file.
func (d *Device) restore(table map[uint32]chunkDurable) error {
	geo := d.geo
	spc := geo.SectorsPerChunk()
	bits := geo.Chip.Cell.BitsPerCell()
	spp := geo.Chip.SectorsPerPage
	pageBytes := geo.Chip.PageBytes()
	buf := make([]byte, d.stripeBytes())
	total := geo.Groups * geo.PUsPerGroup * geo.ChunksPerPU
	for flat := 0; flat < total; flat++ {
		cd, ok := table[uint32(flat)]
		if !ok {
			continue
		}
		g := flat / (geo.PUsPerGroup * geo.ChunksPerPU)
		u := (flat / geo.ChunksPerPU) % geo.PUsPerGroup
		c := flat % geo.ChunksPerPU
		pu := d.pu(g, u)
		m := &pu.chunks[c]
		if m.state == ChunkOffline && cd.state != ChunkOffline {
			// Factory-bad under this seed: the durable record cannot
			// resurrect it (and with a matching seed never claims to).
			continue
		}
		m.wear = int32(cd.wear)
		switch cd.state {
		case ChunkOffline:
			m.state = ChunkOffline
			m.wp = int32(cd.wp)
		case ChunkFree:
			m.state = ChunkFree
			m.wp = 0
		case ChunkOpen, ChunkClosed:
			wp := cd.wp - cd.wp%geo.WSOpt // records are stripe-aligned; be safe
			chip := d.chips[g][u]
			for s := 0; s < wp/geo.WSOpt; s++ {
				if err := d.backend.readData(uint32(flat), s*geo.WSOpt, buf); err != nil {
					return err
				}
				for p := 0; p < geo.Chip.Planes; p++ {
					for b := 0; b < bits; b++ {
						off := (p*bits + b) * spp * geo.Chip.SectorSize
						if err := chip.Program(p, c, s*bits+b, buf[off:off+pageBytes], nil); err != nil {
							return fmt.Errorf("ocssd: restore %v: %w", ChunkID{g, u, c}, err)
						}
					}
				}
			}
			// No bufBase to restore: the base is derived from wp and the
			// (empty) buffer, and a slot is assigned lazily on first write.
			m.wp = int32(wp)
			m.state = cd.state
			if m.state == ChunkOpen && wp == spc {
				m.state = ChunkClosed
			}
			if m.state == ChunkOpen {
				pu.open++
			}
		}
	}
	return nil
}

// pu returns the state shard of one parallel unit.
func (d *Device) pu(g, u int) *puState { return &d.pus[g*d.geo.PUsPerGroup+u] }

// bufBase reports the stripe-aligned sector where a chunk's partial-
// stripe buffer begins: the write pointer minus the buffered sectors
// (the pointer always leads the buffer by exactly its content). Caller
// holds the PU lock.
func (d *Device) bufBase(pu *puState, m *chunkMeta) int {
	return int(m.wp) - len(pu.buffered(m))/d.geo.Chip.SectorSize
}

// flatChunk is the backend/fault-injector key of a chunk: its index in
// group-major, PU-major, chunk-minor order.
func (d *Device) flatChunk(id ChunkID) uint32 {
	return uint32((id.Group*d.geo.PUsPerGroup+id.PU)*d.geo.ChunksPerPU + id.Chunk)
}

// alive rejects media operations on a power-cut device. Zero cost when
// no injector is wired.
func (d *Device) alive() error {
	if d.faults != nil && d.faults.Dead() {
		return fault.ErrPowerCut
	}
	return nil
}

// Geometry reports the device geometry (the identify command of §2.2).
func (d *Device) Geometry() Geometry { return d.geo }

// WriteCacheEnabled reports whether the device models a write-back
// cache. The cache admission tracker is device-global, serially
// reusable state: when it is on, concurrent writes — even to disjoint
// groups — interact through it, so callers that overlap writes for
// wall-clock speed (the host's pipelined executor) must serialize all
// writes on a cached device to keep virtual timing deterministic.
// Reads never mutate the tracker and stay group-scoped either way.
func (d *Device) WriteCacheEnabled() bool { return d.cache.enabled() }

// Errors returns the asynchronous error notification channel.
func (d *Device) Errors() <-chan AsyncError { return d.asyncC }

// Stats returns a copy of the device counters. Each counter is read
// atomically but the snapshot as a whole is not a single atomic cut:
// under concurrent load, related counters (e.g. VectorWrites and
// SectorsWritten) may be momentarily out of step. Quiesce the device
// for exact cross-counter invariants.
func (d *Device) Stats() Stats { return d.stats.snapshot() }

// MetadataBytes reports the resident bytes of per-chunk controller
// metadata: the packed chunk records plus the stripe-buffer slot
// bookkeeping (slot headers and free list — slot payloads are data
// buffers bounded by open chunks, not metadata that scales with chunk
// count). Divide by Geometry().TotalPUs()·ChunksPerPU for the
// bytes-per-chunk budget the scale benchmarks gate on.
func (d *Device) MetadataBytes() int64 {
	var total int64
	for i := range d.pus {
		pu := &d.pus[i]
		pu.mu.Lock()
		total += int64(cap(pu.chunks)) * int64(unsafe.Sizeof(chunkMeta{}))
		total += int64(cap(pu.bufs)) * int64(unsafe.Sizeof([]byte(nil)))
		total += int64(cap(pu.freeSlots)) * int64(unsafe.Sizeof(int32(0)))
		pu.mu.Unlock()
	}
	return total
}

// ChannelUtilization reports per-group channel utilization over [0, now].
func (d *Device) ChannelUtilization(now vclock.Time) []float64 {
	out := make([]float64, d.geo.Groups)
	for g, r := range d.channels {
		out[g] = r.Utilization(now)
	}
	return out
}

// maxFaultEvents bounds the fault log page's event ring.
const maxFaultEvents = 64

// FaultEvent is one chunk-level fault the device recorded (grown-bad
// retirement, program/erase failure, injected read escalation).
type FaultEvent struct {
	Chunk ChunkID
	Err   string
}

// FaultLog is the device's fault/error log page: injector counters plus
// the most recent chunk-level fault events.
type FaultLog struct {
	Injected       fault.Stats
	GrownBadChunks int64
	Events         []FaultEvent
}

// FaultLog snapshots the fault/error log page.
func (d *Device) FaultLog() FaultLog {
	fl := FaultLog{GrownBadChunks: d.stats.grownBadChunks.Load()}
	if d.faults != nil {
		fl.Injected = d.faults.Stats()
	}
	d.faultMu.Lock()
	fl.Events = append([]FaultEvent(nil), d.faultEvents...)
	d.faultMu.Unlock()
	return fl
}

func (d *Device) notify(id ChunkID, err error) {
	d.faultMu.Lock()
	if len(d.faultEvents) >= maxFaultEvents {
		copy(d.faultEvents, d.faultEvents[1:])
		d.faultEvents = d.faultEvents[:maxFaultEvents-1]
	}
	d.faultEvents = append(d.faultEvents, FaultEvent{Chunk: id, Err: err.Error()})
	d.faultMu.Unlock()
	select {
	case d.asyncC <- AsyncError{Chunk: id, Err: err}:
	default: // drop when nobody is listening
	}
}

// retireChunk transitions a chunk to OFFLINE (grown bad), records the
// transition durably and notifies listeners. Caller holds the PU lock.
func (d *Device) retireChunk(pu *puState, id ChunkID, err error) {
	m := &pu.chunks[id.Chunk]
	if m.state == ChunkOpen {
		pu.open--
		pu.putSlot(m.bufSlot)
		m.bufSlot = -1
	}
	m.state = ChunkOffline
	d.stats.grownBadChunks.Add(1)
	if d.backend != nil {
		d.backend.logState(d.flatChunk(id), ChunkOffline, int(m.wp), int(m.wear))
	}
	d.notify(id, err)
}

// die finishes a power cut. With PLP, capacitor power flushes every
// buffered partial stripe (padded to a full stripe) to the durable
// backend; then the backend stops accepting writes. In-memory state is
// left as-is — the device is dead, and only what OpenDevice can restore
// from the backend matters. cur is the PU lock the caller already
// holds (nil if none). dieOnce guarantees a single execution even when
// concurrent operations all observe the cut.
func (d *Device) die(cur *puState) {
	d.dieOnce.Do(func() {
		if d.backend == nil {
			return
		}
		if d.opts.PowerLossProtected {
			scratch := make([]byte, d.stripeBytes())
			spc := d.geo.SectorsPerChunk()
			for g := 0; g < d.geo.Groups; g++ {
				for u := 0; u < d.geo.PUsPerGroup; u++ {
					pu := d.pu(g, u)
					if pu != cur {
						pu.mu.Lock()
					}
					for c := range pu.chunks {
						m := &pu.chunks[c]
						buf := pu.buffered(m)
						if m.state != ChunkOpen || len(buf) == 0 {
							continue
						}
						base := d.bufBase(pu, m)
						n := copy(scratch, buf)
						clear(scratch[n:])
						flat := d.flatChunk(ChunkID{g, u, c})
						d.backend.writeData(flat, base, scratch)
						st := ChunkOpen
						if base+d.geo.WSOpt == spc {
							st = ChunkClosed
						}
						d.backend.logState(flat, st, base+d.geo.WSOpt, int(m.wear))
					}
					if pu != cur {
						pu.mu.Unlock()
					}
				}
			}
		}
		d.backend.markDead()
	})
}

// dieOnProgram is a power cut landing on an in-flight stripe program.
// With PLP the stripe completes on capacitor power; without it, at most
// a torn prefix of the stripe's data reaches the backend — and no
// chunk-state record, so the restored write pointer excludes it.
func (d *Device) dieOnProgram(pu *puState, id ChunkID, baseSector int, buf []byte, torn int) {
	if d.backend != nil {
		flat := d.flatChunk(id)
		if d.opts.PowerLossProtected {
			d.backend.writeData(flat, baseSector, buf)
			st := ChunkOpen
			if baseSector+d.geo.WSOpt == d.geo.SectorsPerChunk() {
				st = ChunkClosed
			}
			d.backend.logState(flat, st, baseSector+d.geo.WSOpt, int(pu.chunks[id.Chunk].wear))
		} else if torn > 0 {
			d.backend.writeData(flat, baseSector, buf[:torn*d.geo.Chip.SectorSize])
		}
	}
	d.die(pu)
}

// Close releases the durable backend's file handles (no-op in-memory).
func (d *Device) Close() error {
	if d.backend != nil {
		return d.backend.Close()
	}
	return nil
}

// Chunk reports the chunk-log entry for one chunk.
func (d *Device) Chunk(id ChunkID) (ChunkInfo, error) {
	if err := d.geo.CheckPPA(id.PPAOf(0)); err != nil {
		return ChunkInfo{}, err
	}
	pu := d.pu(id.Group, id.PU)
	pu.mu.Lock()
	defer pu.mu.Unlock()
	m := &pu.chunks[id.Chunk]
	return ChunkInfo{ID: id, State: m.state, WP: int(m.wp), Wear: int(m.wear)}, nil
}

// Report returns the full chunk log (every chunk on the device).
func (d *Device) Report() []ChunkInfo {
	out := make([]ChunkInfo, 0, d.geo.Groups*d.geo.PUsPerGroup*d.geo.ChunksPerPU)
	for g := 0; g < d.geo.Groups; g++ {
		for u := 0; u < d.geo.PUsPerGroup; u++ {
			pu := d.pu(g, u)
			pu.mu.Lock()
			for c := range pu.chunks {
				m := &pu.chunks[c]
				out = append(out, ChunkInfo{
					ID:    ChunkID{g, u, c},
					State: m.state,
					WP:    int(m.wp),
					Wear:  int(m.wear),
				})
			}
			pu.mu.Unlock()
		}
	}
	return out
}

// stripeBytes is the size of one ws_opt stripe in bytes.
func (d *Device) stripeBytes() int { return d.geo.WSOpt * d.geo.Chip.SectorSize }

// programStripe writes one complete wordline stripe (ws_opt sectors,
// already assembled in buf) to NAND and accounts its virtual timing.
// The caller holds the PU lock. It returns the virtual completion
// instant.
func (d *Device) programStripe(at vclock.Time, pu *puState, id ChunkID, baseSector int, buf []byte) (vclock.Time, error) {
	geo := d.geo
	chip := d.chips[id.Group][id.PU]
	bits := geo.Chip.Cell.BitsPerCell()
	spp := geo.Chip.SectorsPerPage
	pageBytes := geo.Chip.PageBytes()

	// Timing: the whole stripe crosses the channel bus once, then the
	// chip programs bits paired pages (planes program in parallel).
	_, xferEnd := d.channels[id.Group].Acquire(at, vclock.DurationFor(int64(len(buf)), geo.ChannelMBps))
	var progDur vclock.Duration
	firstPage := geo.locate(baseSector).page
	for b := 0; b < bits; b++ {
		progDur += chip.ProgramTime(firstPage + b)
	}
	_, progEnd := d.chipRes[id.Group][id.PU].Acquire(xferEnd, progDur)

	// Fault injection: a stripe program is one media op.
	if d.faults != nil {
		v := d.faults.OnOp(fault.OpProgram, uint64(d.flatChunk(id)), geo.WSOpt)
		if v.PowerCut {
			d.dieOnProgram(pu, id, baseSector, buf, v.TornSectors)
			return progEnd, fmt.Errorf("program %v: %w", id, fault.ErrPowerCut)
		}
		if v.Err != nil {
			d.retireChunk(pu, id, v.Err)
			return progEnd, fmt.Errorf("program %v: %w", id, v.Err)
		}
	}

	// State: program each (plane, paired) page of the stripe.
	for p := 0; p < geo.Chip.Planes; p++ {
		for b := 0; b < bits; b++ {
			off := (p*bits + b) * spp * geo.Chip.SectorSize
			page := firstPage + b
			if err := chip.Program(p, id.Chunk, page, buf[off:off+pageBytes], nil); err != nil {
				d.retireChunk(pu, id, err)
				return progEnd, fmt.Errorf("program %v: %w", id, err)
			}
		}
	}
	m := &pu.chunks[id.Chunk]
	// Persist the programmed stripe and its state transition. Data goes
	// first: a cut between the two leaves the durable write pointer at
	// the previous record, which covers only fully persisted data.
	if d.backend != nil {
		flat := d.flatChunk(id)
		if err := d.backend.writeData(flat, baseSector, buf); err != nil {
			return progEnd, err
		}
		st := ChunkOpen
		if baseSector+geo.WSOpt == geo.SectorsPerChunk() {
			st = ChunkClosed
		}
		if err := d.backend.logState(flat, st, baseSector+geo.WSOpt, int(m.wear)); err != nil {
			return progEnd, err
		}
	}
	if progEnd > m.flushEnd {
		m.flushEnd = progEnd
	}
	return progEnd, nil
}

// writeChunk appends n sectors of data to a chunk at its write pointer.
// The caller holds the PU lock. Returns the client-visible completion
// time.
func (d *Device) writeChunk(now vclock.Time, pu *puState, id ChunkID, sector int, data []byte) (vclock.Time, error) {
	geo := d.geo
	m := &pu.chunks[id.Chunk]
	n := len(data) / geo.Chip.SectorSize

	switch m.state {
	case ChunkOffline:
		return now, fmt.Errorf("%w: %v", ErrOffline, id)
	case ChunkClosed:
		return now, fmt.Errorf("%w: write to closed %v", ErrChunkState, id)
	case ChunkFree:
		if pu.open >= geo.MaxOpenPerPU {
			return now, fmt.Errorf("%w: %v", ErrOpenLimit, id)
		}
		m.state = ChunkOpen
		pu.open++
	}
	if m.bufSlot < 0 {
		// Freshly opened, or restored open without a write yet: assign a
		// stripe-buffer slot.
		m.bufSlot = pu.getSlot(d.stripeBytes())
	}
	if sector != int(m.wp) {
		return now, fmt.Errorf("%w: %v sector %d, wp %d", ErrWritePointer, id, sector, m.wp)
	}
	if int(m.wp)+n > geo.SectorsPerChunk() {
		return now, fmt.Errorf("%w: %v", ErrChunkFull, id)
	}

	// Client-visible cost: admission to the write-back cache (may wait
	// for drain) plus the DRAM copy. Without a cache, the client also
	// waits for every stripe program it completes.
	completeAt := now
	if d.cache.enabled() {
		completeAt = d.cache.admit(now, int64(len(data)))
	}
	copyDur := vclock.DurationFor(int64(len(data)), geo.CacheMBps)
	completeAt = completeAt.Add(copyDur)

	stripe := d.stripeBytes()
	slot := m.bufSlot
	var lastProg vclock.Time
	for len(data) > 0 {
		room := stripe - len(pu.bufs[slot])
		take := len(data)
		if take > room {
			take = room
		}
		pu.bufs[slot] = append(pu.bufs[slot], data[:take]...)
		data = data[take:]
		m.wp += int32(take / geo.Chip.SectorSize)
		if len(pu.bufs[slot]) == stripe {
			// The buffer holds a full stripe, so its base is exactly one
			// stripe behind the (already advanced) write pointer.
			progEnd, err := d.programStripe(completeAt, pu, id, int(m.wp)-geo.WSOpt, pu.bufs[slot])
			if err != nil {
				return completeAt, err
			}
			if d.cache.enabled() {
				// Earlier contributions to this stripe released their
				// holds when their own writes completed; only this
				// write's portion is still held.
				d.cache.occupy(progEnd, int64(take))
			}
			lastProg = progEnd
			pu.bufs[slot] = pu.bufs[slot][:0]
		} else if d.cache.enabled() {
			// Partial-stripe remainder: release the hold immediately;
			// the stripe buffer is small, bounded controller state.
			d.cache.occupy(completeAt, int64(take))
		}
	}
	if !d.cache.enabled() && lastProg > completeAt {
		completeAt = lastProg
	}
	if int(m.wp) == geo.SectorsPerChunk() {
		m.state = ChunkClosed
		pu.putSlot(slot)
		m.bufSlot = -1
		pu.open--
	}
	return completeAt, nil
}

// VectorWrite executes a scatter-gather write (§2.2). Every run of
// sectors within a chunk must start at that chunk's write pointer and be
// a multiple of ws_min. Data holds len(ppas) sectors, in ppas order.
// Returns the client-visible virtual completion instant.
func (d *Device) VectorWrite(now vclock.Time, ppas []PPA, data []byte) (vclock.Time, error) {
	geo := d.geo
	if err := d.alive(); err != nil {
		return now, err
	}
	if len(data) != len(ppas)*geo.Chip.SectorSize {
		return now, fmt.Errorf("%w: %d bytes for %d sectors", ErrDataSize, len(data), len(ppas))
	}
	if len(ppas) == 0 {
		return now, nil
	}
	for _, p := range ppas {
		if err := geo.CheckPPA(p); err != nil {
			return now, err
		}
	}

	end := now
	i := 0
	for i < len(ppas) {
		// Coalesce the maximal contiguous run within one chunk.
		j := i + 1
		for j < len(ppas) && ppas[j].ChunkOf() == ppas[i].ChunkOf() && ppas[j].Sector == ppas[j-1].Sector+1 {
			j++
		}
		run := j - i
		if run%geo.WSMin != 0 {
			return now, fmt.Errorf("%w: run of %d sectors at %v", ErrWriteSize, run, ppas[i])
		}
		sz := geo.Chip.SectorSize
		pu := d.pu(ppas[i].Group, ppas[i].PU)
		pu.mu.Lock()
		t, err := d.writeChunk(now, pu, ppas[i].ChunkOf(), ppas[i].Sector, data[i*sz:j*sz])
		pu.mu.Unlock()
		if err != nil {
			return now, err
		}
		if t > end {
			end = t
		}
		i = j
	}
	d.stats.vectorWrites.Add(1)
	d.stats.sectorsWritten.Add(int64(len(ppas)))
	return end, nil
}

// Append writes data at the chunk's current write pointer and returns
// the starting sector that was assigned along with the completion time.
func (d *Device) Append(now vclock.Time, id ChunkID, data []byte) (int, vclock.Time, error) {
	geo := d.geo
	if err := d.alive(); err != nil {
		return 0, now, err
	}
	if len(data) == 0 || len(data)%(geo.WSMin*geo.Chip.SectorSize) != 0 {
		return 0, now, fmt.Errorf("%w: %d bytes", ErrWriteSize, len(data))
	}
	if err := geo.CheckPPA(id.PPAOf(0)); err != nil {
		return 0, now, err
	}
	pu := d.pu(id.Group, id.PU)
	pu.mu.Lock()
	start := int(pu.chunks[id.Chunk].wp)
	end, err := d.writeChunk(now, pu, id, start, data)
	pu.mu.Unlock()
	if err != nil {
		return 0, now, err
	}
	d.stats.vectorWrites.Add(1)
	d.stats.sectorsWritten.Add(int64(len(data) / geo.Chip.SectorSize))
	return start, end, nil
}

// Pad fills the open partial stripe of a chunk with zero sectors so that
// everything appended so far becomes durable (programmed to NAND). It is
// how a WAL achieves synchronous commit on an append-only device. The
// padded sectors are wasted space accounted in Stats.PadSectors.
func (d *Device) Pad(now vclock.Time, id ChunkID) (vclock.Time, error) {
	geo := d.geo
	if err := d.alive(); err != nil {
		return now, err
	}
	if err := geo.CheckPPA(id.PPAOf(0)); err != nil {
		return now, err
	}
	pu := d.pu(id.Group, id.PU)
	pu.mu.Lock()
	defer pu.mu.Unlock()
	m := &pu.chunks[id.Chunk]
	if m.state != ChunkOpen || len(pu.buffered(m)) == 0 {
		return now, nil // nothing buffered: already durable
	}
	padBytes := d.stripeBytes() - len(pu.buffered(m))
	padSectors := padBytes / geo.Chip.SectorSize
	end, err := d.writeChunk(now, pu, id, int(m.wp), d.zeroStripe[:padBytes])
	if err != nil {
		return now, err
	}
	// Pad is the durability barrier (FUA/flush): even with the write-back
	// cache on, the caller waits until the chunk's pending programs hit
	// NAND.
	if m.flushEnd > end {
		end = m.flushEnd
	}
	d.stats.padSectors.Add(int64(padSectors))
	return end, nil
}

// chargedPage records one distinct page already charged tR within a
// vector read. Vectors are short (a block read is one stripe, a handful
// of pages), so a linear scan beats a map and stays off the heap.
type chargedPage struct {
	id   ChunkID
	page int
	end  vclock.Time
}

// VectorRead executes a scatter-gather read of logical blocks into dst
// (len(ppas) sectors). Reads served from the controller buffer or the
// write-back cache cost DRAM time; media reads cost tR per distinct page
// plus the channel transfer. Returns the virtual completion instant.
func (d *Device) VectorRead(now vclock.Time, ppas []PPA, dst []byte) (vclock.Time, error) {
	geo := d.geo
	if err := d.alive(); err != nil {
		return now, err
	}
	if len(dst) != len(ppas)*geo.Chip.SectorSize {
		return now, fmt.Errorf("%w: %d bytes for %d sectors", ErrDataSize, len(dst), len(ppas))
	}
	for _, p := range ppas {
		if err := geo.CheckPPA(p); err != nil {
			return now, err
		}
	}

	sz := geo.Chip.SectorSize
	end := now
	var cacheHits, mediaReads int64
	// Track distinct pages charged per chip so one page read serves all
	// its sectors in this vector. The slice stays on the stack for
	// typical vector sizes.
	charged := make([]chargedPage, 0, 16)

	i := 0
	for i < len(ppas) {
		// Process the maximal run of sectors on one parallel unit under
		// that PU's lock; distinct PUs never contend.
		g, u := ppas[i].Group, ppas[i].PU
		j := i + 1
		for j < len(ppas) && ppas[j].Group == g && ppas[j].PU == u {
			j++
		}
		pu := d.pu(g, u)
		pu.mu.Lock()
		for k := i; k < j; k++ {
			p := ppas[k]
			m := &pu.chunks[p.Chunk]
			if m.state == ChunkOffline {
				pu.mu.Unlock()
				return now, fmt.Errorf("%w: %v", ErrOffline, p)
			}
			if p.Sector >= int(m.wp) {
				pu.mu.Unlock()
				return now, fmt.Errorf("%w: %v (wp %d)", ErrUnwritten, p, m.wp)
			}
			// Fault injection: one media op per distinct chunk in the run.
			if d.faults != nil && (k == i || p.Chunk != ppas[k-1].Chunk) {
				v := d.faults.OnOp(fault.OpRead, uint64(d.flatChunk(p.ChunkOf())), 0)
				if v.PowerCut {
					d.die(pu)
					pu.mu.Unlock()
					return now, fmt.Errorf("read %v: %w", p, fault.ErrPowerCut)
				}
				if v.Err != nil {
					if v.GrowBad {
						d.retireChunk(pu, p.ChunkOf(), v.Err)
					}
					pu.mu.Unlock()
					return now, fmt.Errorf("read %v: %w", p, v.Err)
				}
			}
			out := dst[k*sz : (k+1)*sz]
			// Still in the partial-stripe controller buffer?
			if base, buf := d.bufBase(pu, m), pu.buffered(m); m.state == ChunkOpen && p.Sector >= base && (p.Sector-base+1)*sz <= len(buf) {
				off := (p.Sector - base) * sz
				copy(out, buf[off:off+sz])
				t := now.Add(vclock.DurationFor(int64(sz), geo.CacheMBps))
				if t > end {
					end = t
				}
				cacheHits++
				continue
			}
			loc := geo.locate(p.Sector)
			data, _, err := d.chips[g][u].Read(loc.plane, p.Chunk, loc.page)
			if err != nil {
				pu.mu.Unlock()
				return now, fmt.Errorf("read %v: %w", p, err)
			}
			copy(out, data[loc.sector*sz:(loc.sector+1)*sz])
			// Write-back cache window: data not yet drained reads at DRAM speed.
			if d.cache.enabled() && m.flushEnd > now {
				t := now.Add(vclock.DurationFor(int64(sz), geo.CacheMBps))
				if t > end {
					end = t
				}
				cacheHits++
				continue
			}
			id := p.ChunkOf()
			var tREnd vclock.Time
			found := false
			for ci := range charged {
				if charged[ci].id == id && charged[ci].page == loc.page {
					tREnd = charged[ci].end
					found = true
					break
				}
			}
			if !found {
				_, tREnd = d.chipRes[g][u].Acquire(now, d.chips[g][u].ReadTime())
				charged = append(charged, chargedPage{id: id, page: loc.page, end: tREnd})
			}
			_, xferEnd := d.channels[g].Acquire(tREnd, vclock.DurationFor(int64(sz), geo.ChannelMBps))
			if xferEnd > end {
				end = xferEnd
			}
			mediaReads++
		}
		pu.mu.Unlock()
		i = j
	}
	d.stats.vectorReads.Add(1)
	d.stats.sectorsRead.Add(int64(len(ppas)))
	d.stats.cacheHitReads.Add(cacheHits)
	d.stats.mediaReads.Add(mediaReads)
	return end, nil
}

// Reset erases a chunk (§2.2: "A chunk must be reset before it is
// written again"). The chunk returns to the free state with its write
// pointer at zero; wear increases by one.
func (d *Device) Reset(now vclock.Time, id ChunkID) (vclock.Time, error) {
	geo := d.geo
	if err := d.alive(); err != nil {
		return now, err
	}
	if err := geo.CheckPPA(id.PPAOf(0)); err != nil {
		return now, err
	}
	pu := d.pu(id.Group, id.PU)
	pu.mu.Lock()
	defer pu.mu.Unlock()
	m := &pu.chunks[id.Chunk]
	switch m.state {
	case ChunkOffline:
		return now, fmt.Errorf("%w: %v", ErrOffline, id)
	case ChunkFree:
		return now, fmt.Errorf("%w: reset of free %v", ErrChunkState, id)
	case ChunkOpen:
		pu.open--
	}
	// Multi-plane erase: planes erase in parallel, one erase duration.
	chip := d.chips[id.Group][id.PU]
	_, end := d.chipRes[id.Group][id.PU].Acquire(now, chip.EraseTime())
	// offlineHere marks the chunk grown-bad. The open count was already
	// settled by the state switch above, so this does not use retireChunk.
	offlineHere := func(cause error) {
		m.state = ChunkOffline
		pu.putSlot(m.bufSlot)
		m.bufSlot = -1
		d.stats.grownBadChunks.Add(1)
		if d.backend != nil {
			d.backend.logState(d.flatChunk(id), ChunkOffline, int(m.wp), int(m.wear))
		}
		d.notify(id, cause)
	}
	if d.faults != nil {
		v := d.faults.OnOp(fault.OpErase, uint64(d.flatChunk(id)), 0)
		if v.PowerCut {
			d.die(pu)
			return end, fmt.Errorf("reset %v: %w", id, fault.ErrPowerCut)
		}
		if v.Err != nil {
			offlineHere(v.Err)
			return end, fmt.Errorf("reset %v: %w", id, v.Err)
		}
	}
	if err := chip.EraseMulti(id.Chunk); err != nil {
		offlineHere(err)
		return end, fmt.Errorf("reset %v: %w", id, err)
	}
	m.state = ChunkFree
	m.wp = 0
	m.wear++
	pu.putSlot(m.bufSlot)
	m.bufSlot = -1
	if d.backend != nil {
		if err := d.backend.logState(d.flatChunk(id), ChunkFree, 0, int(m.wear)); err != nil {
			return end, err
		}
	}
	d.stats.resets.Add(1)
	return end, nil
}

// Copy moves logical blocks inside the device without host involvement
// (§2.2: "copy of logical blocks (within the Open-Channel SSD, without
// host involvement)"). Source sectors are appended to the destination
// chunk at its write pointer. Returns the assigned destination sectors'
// starting index and the completion instant.
func (d *Device) Copy(now vclock.Time, src []PPA, dst ChunkID) (int, vclock.Time, error) {
	geo := d.geo
	if len(src) == 0 || len(src)%geo.WSMin != 0 {
		return 0, now, fmt.Errorf("%w: %d source sectors", ErrWriteSize, len(src))
	}
	sz := geo.Chip.SectorSize
	need := len(src) * sz
	var buf []byte
	if v := d.copyBufs.Get(); v != nil {
		buf = *(v.(*[]byte))
	}
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	defer func() {
		d.copyBufs.Put(&buf)
	}()
	// Device-internal read of the sources (tR per page, no host channel).
	end, err := d.VectorRead(now, src, buf)
	if err != nil {
		return 0, now, err
	}
	start, end2, err := d.Append(end, dst, buf)
	if err != nil {
		return 0, now, err
	}
	d.stats.copies.Add(1)
	return start, end2, nil
}

// FlushAll pads every open chunk so that all appended data is programmed
// (used for clean shutdown). Returns the latest completion instant.
func (d *Device) FlushAll(now vclock.Time) (vclock.Time, error) {
	end := now
	for g := 0; g < d.geo.Groups; g++ {
		for u := 0; u < d.geo.PUsPerGroup; u++ {
			pu := d.pu(g, u)
			for c := 0; c < d.geo.ChunksPerPU; c++ {
				pu.mu.Lock()
				needs := pu.chunks[c].state == ChunkOpen && len(pu.buffered(&pu.chunks[c])) > 0
				pu.mu.Unlock()
				if !needs {
					continue
				}
				t, err := d.Pad(now, ChunkID{g, u, c})
				if err != nil {
					return end, err
				}
				if t > end {
					end = t
				}
			}
		}
	}
	return end, nil
}

// Crash simulates sudden power loss of the *controller DRAM*: partial
// stripe buffers are lost unless the device is power-loss protected, and
// the chunk write pointers retreat to the last programmed stripe. NAND
// contents survive. Chunk states remain intact (they are reconstructed
// from NAND in reality; the chunk report is the durable source of truth).
func (d *Device) Crash() {
	for g := 0; g < d.geo.Groups; g++ {
		for u := 0; u < d.geo.PUsPerGroup; u++ {
			pu := d.pu(g, u)
			pu.mu.Lock()
			for c := range pu.chunks {
				m := &pu.chunks[c]
				buffered := pu.buffered(m)
				if m.state != ChunkOpen || len(buffered) == 0 {
					continue
				}
				base := d.bufBase(pu, m)
				if d.opts.PowerLossProtected {
					// Capacitors flush the partial stripe with padding.
					padBytes := d.stripeBytes() - len(buffered)
					buf := append(buffered, d.zeroStripe[:padBytes]...)
					if _, err := d.programStripe(0, pu, ChunkID{g, u, c}, base, buf); err == nil {
						m.wp = int32(base + d.geo.WSOpt)
					}
					d.stats.padSectors.Add(int64(padBytes / d.geo.Chip.SectorSize))
				} else {
					// Buffered sectors vanish: the write pointer retreats.
					m.wp = int32(base)
				}
				pu.putSlot(m.bufSlot)
				m.bufSlot = -1
			}
			pu.mu.Unlock()
		}
	}
}
