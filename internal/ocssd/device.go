// Package ocssd simulates an Open-Channel 2.0 SSD (§2.2 of the paper):
// a physical address space of groups × parallel units × chunks × logical
// blocks, vector read/write commands, chunk reset, device-side copy and
// a chunk report, on top of the NAND simulator. The device enforces the
// interface rules — writes land at the chunk write pointer in ws_min
// units, chunks are reset before rewrite — and abstracts planes and
// paired pages by buffering sub-stripe writes in controller DRAM until a
// full wordline stripe (ws_opt) can be programmed.
//
// Timing is virtual (internal/vclock): each group has a channel-bus
// resource and each PU a chip resource, so cross-group operations never
// interfere while same-group operations queue — exactly the isolation
// argument of §2.2 and §4.3.
package ocssd

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/nand"
	"repro/internal/vclock"
)

// Errors reported by device commands.
var (
	ErrAddress     = errors.New("ocssd: address out of range")
	ErrWritePointer = errors.New("ocssd: write not at chunk write pointer")
	ErrWriteSize   = errors.New("ocssd: write size not a multiple of ws_min")
	ErrChunkState  = errors.New("ocssd: invalid chunk state for command")
	ErrChunkFull   = errors.New("ocssd: write beyond chunk capacity")
	ErrUnwritten   = errors.New("ocssd: read of unwritten sector")
	ErrOffline     = errors.New("ocssd: chunk is offline")
	ErrOpenLimit   = errors.New("ocssd: too many open chunks on parallel unit")
	ErrDataSize    = errors.New("ocssd: data length does not match sector count")
)

// ChunkState is the state machine of §2.2 / OCSSD 2.0 chunk reports.
type ChunkState uint8

// Chunk states.
const (
	ChunkFree ChunkState = iota
	ChunkOpen
	ChunkClosed
	ChunkOffline
)

func (s ChunkState) String() string {
	switch s {
	case ChunkFree:
		return "free"
	case ChunkOpen:
		return "open"
	case ChunkClosed:
		return "closed"
	case ChunkOffline:
		return "offline"
	default:
		return fmt.Sprintf("ChunkState(%d)", uint8(s))
	}
}

// ChunkInfo is one entry of the chunk report (get log page, §2.2).
type ChunkInfo struct {
	ID    ChunkID
	State ChunkState
	WP    int // write pointer: next writable sector
	Wear  int // reset count
}

// AsyncError is an asynchronous device notification (§2.2: bad media
// management and asynchronous error reporting).
type AsyncError struct {
	Chunk ChunkID
	Err   error
}

// Stats aggregates device-level operation counters.
type Stats struct {
	VectorWrites  int64
	VectorReads   int64
	Resets        int64
	Copies        int64
	SectorsWritten int64
	SectorsRead   int64
	CacheHitReads int64
	MediaReads    int64
	PadSectors    int64
	GrownBadChunks int64
}

// Options configures device construction.
type Options struct {
	Seed        int64
	Reliability nand.Reliability
	// Timing overrides the per-cell-type default when non-nil.
	Timing *nand.TimingProfile
	// PowerLossProtected keeps partially filled stripe buffers across a
	// Crash (capacitor-backed DRAM). Without it, un-programmed sectors
	// are lost on crash, which is what forces FTLs to use a WAL.
	PowerLossProtected bool
}

type chunkMeta struct {
	state    ChunkState
	wp       int
	wear     int
	flushEnd vclock.Time // latest NAND program completion for this chunk
	buf      []byte      // partial-stripe buffer (len < stripe bytes)
	bufBase  int         // sector index where buf starts (stripe-aligned)
}

// Device is one simulated Open-Channel SSD.
type Device struct {
	geo  Geometry
	opts Options

	chips    [][]*nand.Chip       // [group][pu]
	channels []*vclock.Resource   // one bus per group
	chipRes  [][]*vclock.Resource // one resource per PU
	cache    *cacheTracker

	mu     sync.Mutex
	chunks [][][]chunkMeta // [group][pu][chunk]
	open   [][]int         // open chunk count per PU

	statsMu sync.Mutex
	stats   Stats

	asyncC chan AsyncError
}

// New builds a device with the given geometry. The seed drives all
// failure injection; chips get distinct derived seeds.
func New(geo Geometry, opts Options) (*Device, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	timing := nand.DefaultTiming(geo.Chip.Cell)
	if opts.Timing != nil {
		timing = *opts.Timing
	}
	d := &Device{
		geo:      geo,
		opts:     opts,
		chips:    make([][]*nand.Chip, geo.Groups),
		channels: make([]*vclock.Resource, geo.Groups),
		chipRes:  make([][]*vclock.Resource, geo.Groups),
		chunks:   make([][][]chunkMeta, geo.Groups),
		open:     make([][]int, geo.Groups),
		asyncC:   make(chan AsyncError, 1024),
	}
	var cacheBytes int64
	if geo.CacheMB > 0 {
		cacheBytes = int64(geo.CacheMB) << 20
		d.cache = newCacheTracker(cacheBytes)
	}
	for g := 0; g < geo.Groups; g++ {
		d.channels[g] = vclock.NewResource(fmt.Sprintf("ch%d", g))
		d.chips[g] = make([]*nand.Chip, geo.PUsPerGroup)
		d.chipRes[g] = make([]*vclock.Resource, geo.PUsPerGroup)
		d.chunks[g] = make([][]chunkMeta, geo.PUsPerGroup)
		d.open[g] = make([]int, geo.PUsPerGroup)
		for u := 0; u < geo.PUsPerGroup; u++ {
			seed := opts.Seed*1000003 + int64(g)*257 + int64(u) + 1
			chip, err := nand.New(geo.Chip, timing, opts.Reliability, seed)
			if err != nil {
				return nil, err
			}
			d.chips[g][u] = chip
			d.chipRes[g][u] = vclock.NewResource(fmt.Sprintf("chip%d.%d", g, u))
			d.chunks[g][u] = make([]chunkMeta, geo.ChunksPerPU)
			for c := range d.chunks[g][u] {
				// A chunk is offline if any of its per-plane blocks is
				// factory bad (the chunk spans block c on every plane).
				for p := 0; p < geo.Chip.Planes; p++ {
					if chip.IsBad(p, c) {
						d.chunks[g][u][c].state = ChunkOffline
						break
					}
				}
			}
		}
	}
	return d, nil
}

// Geometry reports the device geometry (the identify command of §2.2).
func (d *Device) Geometry() Geometry { return d.geo }

// Errors returns the asynchronous error notification channel.
func (d *Device) Errors() <-chan AsyncError { return d.asyncC }

// Stats returns a copy of the device counters.
func (d *Device) Stats() Stats {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	return d.stats
}

// ChannelUtilization reports per-group channel utilization over [0, now].
func (d *Device) ChannelUtilization(now vclock.Time) []float64 {
	out := make([]float64, d.geo.Groups)
	for g, r := range d.channels {
		out[g] = r.Utilization(now)
	}
	return out
}

func (d *Device) notify(id ChunkID, err error) {
	select {
	case d.asyncC <- AsyncError{Chunk: id, Err: err}:
	default: // drop when nobody is listening
	}
}

// Chunk reports the chunk-log entry for one chunk.
func (d *Device) Chunk(id ChunkID) (ChunkInfo, error) {
	if err := d.geo.CheckPPA(id.PPAOf(0)); err != nil {
		return ChunkInfo{}, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	m := &d.chunks[id.Group][id.PU][id.Chunk]
	return ChunkInfo{ID: id, State: m.state, WP: m.wp, Wear: m.wear}, nil
}

// Report returns the full chunk log (every chunk on the device).
func (d *Device) Report() []ChunkInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]ChunkInfo, 0, d.geo.Groups*d.geo.PUsPerGroup*d.geo.ChunksPerPU)
	for g := range d.chunks {
		for u := range d.chunks[g] {
			for c := range d.chunks[g][u] {
				m := &d.chunks[g][u][c]
				out = append(out, ChunkInfo{
					ID:    ChunkID{g, u, c},
					State: m.state,
					WP:    m.wp,
					Wear:  m.wear,
				})
			}
		}
	}
	return out
}

// stripeBytes is the size of one ws_opt stripe in bytes.
func (d *Device) stripeBytes() int { return d.geo.WSOpt * d.geo.Chip.SectorSize }

// programStripe writes one complete wordline stripe (ws_opt sectors,
// already assembled in buf) to NAND and accounts its virtual timing.
// The caller holds d.mu. It returns the virtual completion instant.
func (d *Device) programStripe(at vclock.Time, id ChunkID, baseSector int, buf []byte) (vclock.Time, error) {
	geo := d.geo
	chip := d.chips[id.Group][id.PU]
	bits := geo.Chip.Cell.BitsPerCell()
	spp := geo.Chip.SectorsPerPage
	pageBytes := geo.Chip.PageBytes()

	// Timing: the whole stripe crosses the channel bus once, then the
	// chip programs bits paired pages (planes program in parallel).
	_, xferEnd := d.channels[id.Group].Acquire(at, vclock.DurationFor(int64(len(buf)), geo.ChannelMBps))
	var progDur vclock.Duration
	firstPage := geo.locate(baseSector).page
	for b := 0; b < bits; b++ {
		progDur += chip.ProgramTime(firstPage + b)
	}
	_, progEnd := d.chipRes[id.Group][id.PU].Acquire(xferEnd, progDur)

	// State: program each (plane, paired) page of the stripe.
	for p := 0; p < geo.Chip.Planes; p++ {
		for b := 0; b < bits; b++ {
			off := (p*bits + b) * spp * geo.Chip.SectorSize
			page := firstPage + b
			if err := chip.Program(p, id.Chunk, page, buf[off:off+pageBytes], nil); err != nil {
				m := &d.chunks[id.Group][id.PU][id.Chunk]
				m.state = ChunkOffline
				d.statsMu.Lock()
				d.stats.GrownBadChunks++
				d.statsMu.Unlock()
				d.notify(id, err)
				return progEnd, fmt.Errorf("program %v: %w", id, err)
			}
		}
	}
	m := &d.chunks[id.Group][id.PU][id.Chunk]
	if progEnd > m.flushEnd {
		m.flushEnd = progEnd
	}
	return progEnd, nil
}

// writeChunk appends n sectors of data to a chunk at its write pointer.
// The caller holds d.mu. Returns the client-visible completion time.
func (d *Device) writeChunk(now vclock.Time, id ChunkID, sector int, data []byte) (vclock.Time, error) {
	geo := d.geo
	m := &d.chunks[id.Group][id.PU][id.Chunk]
	n := len(data) / geo.Chip.SectorSize

	switch m.state {
	case ChunkOffline:
		return now, fmt.Errorf("%w: %v", ErrOffline, id)
	case ChunkClosed:
		return now, fmt.Errorf("%w: write to closed %v", ErrChunkState, id)
	case ChunkFree:
		if d.open[id.Group][id.PU] >= geo.MaxOpenPerPU {
			return now, fmt.Errorf("%w: %v", ErrOpenLimit, id)
		}
		m.state = ChunkOpen
		m.buf = make([]byte, 0, d.stripeBytes())
		m.bufBase = 0
		d.open[id.Group][id.PU]++
	}
	if sector != m.wp {
		return now, fmt.Errorf("%w: %v sector %d, wp %d", ErrWritePointer, id, sector, m.wp)
	}
	if m.wp+n > geo.SectorsPerChunk() {
		return now, fmt.Errorf("%w: %v", ErrChunkFull, id)
	}

	// Client-visible cost: admission to the write-back cache (may wait
	// for drain) plus the DRAM copy. Without a cache, the client also
	// waits for every stripe program it completes.
	completeAt := now
	if d.cache.enabled() {
		completeAt = d.cache.admit(now, int64(len(data)))
	}
	copyDur := vclock.DurationFor(int64(len(data)), geo.CacheMBps)
	completeAt = completeAt.Add(copyDur)

	stripe := d.stripeBytes()
	var lastProg vclock.Time
	for len(data) > 0 {
		room := stripe - len(m.buf)
		take := len(data)
		if take > room {
			take = room
		}
		m.buf = append(m.buf, data[:take]...)
		data = data[take:]
		m.wp += take / geo.Chip.SectorSize
		if len(m.buf) == stripe {
			progEnd, err := d.programStripe(completeAt, id, m.bufBase, m.buf)
			if err != nil {
				return completeAt, err
			}
			if d.cache.enabled() {
				// Earlier contributions to this stripe released their
				// holds when their own writes completed; only this
				// write's portion is still held.
				d.cache.occupy(progEnd, int64(take))
			}
			lastProg = progEnd
			m.bufBase += geo.WSOpt
			m.buf = m.buf[:0]
		} else if d.cache.enabled() {
			// Partial-stripe remainder: release the hold immediately;
			// the stripe buffer is small, bounded controller state.
			d.cache.occupy(completeAt, int64(take))
		}
	}
	if !d.cache.enabled() && lastProg > completeAt {
		completeAt = lastProg
	}
	if m.wp == geo.SectorsPerChunk() {
		m.state = ChunkClosed
		m.buf = nil
		d.open[id.Group][id.PU]--
	}
	return completeAt, nil
}

// VectorWrite executes a scatter-gather write (§2.2). Every run of
// sectors within a chunk must start at that chunk's write pointer and be
// a multiple of ws_min. Data holds len(ppas) sectors, in ppas order.
// Returns the client-visible virtual completion instant.
func (d *Device) VectorWrite(now vclock.Time, ppas []PPA, data []byte) (vclock.Time, error) {
	geo := d.geo
	if len(data) != len(ppas)*geo.Chip.SectorSize {
		return now, fmt.Errorf("%w: %d bytes for %d sectors", ErrDataSize, len(data), len(ppas))
	}
	if len(ppas) == 0 {
		return now, nil
	}
	for _, p := range ppas {
		if err := geo.CheckPPA(p); err != nil {
			return now, err
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	end := now
	i := 0
	for i < len(ppas) {
		// Coalesce the maximal contiguous run within one chunk.
		j := i + 1
		for j < len(ppas) && ppas[j].ChunkOf() == ppas[i].ChunkOf() && ppas[j].Sector == ppas[j-1].Sector+1 {
			j++
		}
		run := j - i
		if run%geo.WSMin != 0 {
			return now, fmt.Errorf("%w: run of %d sectors at %v", ErrWriteSize, run, ppas[i])
		}
		sz := geo.Chip.SectorSize
		t, err := d.writeChunk(now, ppas[i].ChunkOf(), ppas[i].Sector, data[i*sz:j*sz])
		if err != nil {
			return now, err
		}
		if t > end {
			end = t
		}
		i = j
	}
	d.statsMu.Lock()
	d.stats.VectorWrites++
	d.stats.SectorsWritten += int64(len(ppas))
	d.statsMu.Unlock()
	return end, nil
}

// Append writes data at the chunk's current write pointer and returns
// the starting sector that was assigned along with the completion time.
func (d *Device) Append(now vclock.Time, id ChunkID, data []byte) (int, vclock.Time, error) {
	geo := d.geo
	if len(data) == 0 || len(data)%(geo.WSMin*geo.Chip.SectorSize) != 0 {
		return 0, now, fmt.Errorf("%w: %d bytes", ErrWriteSize, len(data))
	}
	if err := geo.CheckPPA(id.PPAOf(0)); err != nil {
		return 0, now, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	start := d.chunks[id.Group][id.PU][id.Chunk].wp
	end, err := d.writeChunk(now, id, start, data)
	if err != nil {
		return 0, now, err
	}
	d.statsMu.Lock()
	d.stats.VectorWrites++
	d.stats.SectorsWritten += int64(len(data) / geo.Chip.SectorSize)
	d.statsMu.Unlock()
	return start, end, nil
}

// Pad fills the open partial stripe of a chunk with zero sectors so that
// everything appended so far becomes durable (programmed to NAND). It is
// how a WAL achieves synchronous commit on an append-only device. The
// padded sectors are wasted space accounted in Stats.PadSectors.
func (d *Device) Pad(now vclock.Time, id ChunkID) (vclock.Time, error) {
	geo := d.geo
	if err := geo.CheckPPA(id.PPAOf(0)); err != nil {
		return now, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	m := &d.chunks[id.Group][id.PU][id.Chunk]
	if m.state != ChunkOpen || len(m.buf) == 0 {
		return now, nil // nothing buffered: already durable
	}
	padBytes := d.stripeBytes() - len(m.buf)
	padSectors := padBytes / geo.Chip.SectorSize
	end, err := d.writeChunk(now, id, m.wp, make([]byte, padBytes))
	if err != nil {
		return now, err
	}
	// Pad is the durability barrier (FUA/flush): even with the write-back
	// cache on, the caller waits until the chunk's pending programs hit
	// NAND.
	if m.flushEnd > end {
		end = m.flushEnd
	}
	d.statsMu.Lock()
	d.stats.PadSectors += int64(padSectors)
	d.statsMu.Unlock()
	return end, nil
}

// VectorRead executes a scatter-gather read of logical blocks into dst
// (len(ppas) sectors). Reads served from the controller buffer or the
// write-back cache cost DRAM time; media reads cost tR per distinct page
// plus the channel transfer. Returns the virtual completion instant.
func (d *Device) VectorRead(now vclock.Time, ppas []PPA, dst []byte) (vclock.Time, error) {
	geo := d.geo
	if len(dst) != len(ppas)*geo.Chip.SectorSize {
		return now, fmt.Errorf("%w: %d bytes for %d sectors", ErrDataSize, len(dst), len(ppas))
	}
	for _, p := range ppas {
		if err := geo.CheckPPA(p); err != nil {
			return now, err
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	sz := geo.Chip.SectorSize
	end := now
	var cacheHits, mediaReads int64
	// Track distinct pages charged per chip so one page read serves all
	// its sectors in this vector.
	type pageKey struct {
		id   ChunkID
		page int
	}
	charged := make(map[pageKey]vclock.Time)

	for i, p := range ppas {
		m := &d.chunks[p.Group][p.PU][p.Chunk]
		if m.state == ChunkOffline {
			return now, fmt.Errorf("%w: %v", ErrOffline, p)
		}
		if p.Sector >= m.wp {
			return now, fmt.Errorf("%w: %v (wp %d)", ErrUnwritten, p, m.wp)
		}
		out := dst[i*sz : (i+1)*sz]
		// Still in the partial-stripe controller buffer?
		if off := (p.Sector - m.bufBase) * sz; m.state == ChunkOpen && p.Sector >= m.bufBase && off+sz <= len(m.buf) {
			copy(out, m.buf[off:off+sz])
			t := now.Add(vclock.DurationFor(int64(sz), geo.CacheMBps))
			if t > end {
				end = t
			}
			cacheHits++
			continue
		}
		loc := geo.locate(p.Sector)
		data, _, err := d.chips[p.Group][p.PU].Read(loc.plane, p.Chunk, loc.page)
		if err != nil {
			return now, fmt.Errorf("read %v: %w", p, err)
		}
		copy(out, data[loc.sector*sz:(loc.sector+1)*sz])
		// Write-back cache window: data not yet drained reads at DRAM speed.
		if d.cache.enabled() && m.flushEnd > now {
			t := now.Add(vclock.DurationFor(int64(sz), geo.CacheMBps))
			if t > end {
				end = t
			}
			cacheHits++
			continue
		}
		key := pageKey{id: p.ChunkOf(), page: loc.page}
		tREnd, ok := charged[key]
		if !ok {
			_, tREnd = d.chipRes[p.Group][p.PU].Acquire(now, d.chips[p.Group][p.PU].ReadTime())
			charged[key] = tREnd
		}
		_, xferEnd := d.channels[p.Group].Acquire(tREnd, vclock.DurationFor(int64(sz), geo.ChannelMBps))
		if xferEnd > end {
			end = xferEnd
		}
		mediaReads++
	}
	d.statsMu.Lock()
	d.stats.VectorReads++
	d.stats.SectorsRead += int64(len(ppas))
	d.stats.CacheHitReads += cacheHits
	d.stats.MediaReads += mediaReads
	d.statsMu.Unlock()
	return end, nil
}

// Reset erases a chunk (§2.2: "A chunk must be reset before it is
// written again"). The chunk returns to the free state with its write
// pointer at zero; wear increases by one.
func (d *Device) Reset(now vclock.Time, id ChunkID) (vclock.Time, error) {
	geo := d.geo
	if err := geo.CheckPPA(id.PPAOf(0)); err != nil {
		return now, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	m := &d.chunks[id.Group][id.PU][id.Chunk]
	switch m.state {
	case ChunkOffline:
		return now, fmt.Errorf("%w: %v", ErrOffline, id)
	case ChunkFree:
		return now, fmt.Errorf("%w: reset of free %v", ErrChunkState, id)
	case ChunkOpen:
		d.open[id.Group][id.PU]--
	}
	// Multi-plane erase: planes erase in parallel, one erase duration.
	chip := d.chips[id.Group][id.PU]
	_, end := d.chipRes[id.Group][id.PU].Acquire(now, chip.EraseTime())
	if err := chip.EraseMulti(id.Chunk); err != nil {
		m.state = ChunkOffline
		d.statsMu.Lock()
		d.stats.GrownBadChunks++
		d.statsMu.Unlock()
		d.notify(id, err)
		return end, fmt.Errorf("reset %v: %w", id, err)
	}
	m.state = ChunkFree
	m.wp = 0
	m.wear++
	m.buf = nil
	m.bufBase = 0
	d.statsMu.Lock()
	d.stats.Resets++
	d.statsMu.Unlock()
	return end, nil
}

// Copy moves logical blocks inside the device without host involvement
// (§2.2: "copy of logical blocks (within the Open-Channel SSD, without
// host involvement)"). Source sectors are appended to the destination
// chunk at its write pointer. Returns the assigned destination sectors'
// starting index and the completion instant.
func (d *Device) Copy(now vclock.Time, src []PPA, dst ChunkID) (int, vclock.Time, error) {
	geo := d.geo
	if len(src) == 0 || len(src)%geo.WSMin != 0 {
		return 0, now, fmt.Errorf("%w: %d source sectors", ErrWriteSize, len(src))
	}
	sz := geo.Chip.SectorSize
	buf := make([]byte, len(src)*sz)
	// Device-internal read of the sources (tR per page, no host channel).
	end, err := d.VectorRead(now, src, buf)
	if err != nil {
		return 0, now, err
	}
	start, end2, err := d.Append(end, dst, buf)
	if err != nil {
		return 0, now, err
	}
	d.statsMu.Lock()
	d.stats.Copies++
	d.statsMu.Unlock()
	return start, end2, nil
}

// FlushAll pads every open chunk so that all appended data is programmed
// (used for clean shutdown). Returns the latest completion instant.
func (d *Device) FlushAll(now vclock.Time) (vclock.Time, error) {
	end := now
	for g := 0; g < d.geo.Groups; g++ {
		for u := 0; u < d.geo.PUsPerGroup; u++ {
			for c := 0; c < d.geo.ChunksPerPU; c++ {
				d.mu.Lock()
				needs := d.chunks[g][u][c].state == ChunkOpen && len(d.chunks[g][u][c].buf) > 0
				d.mu.Unlock()
				if !needs {
					continue
				}
				t, err := d.Pad(now, ChunkID{g, u, c})
				if err != nil {
					return end, err
				}
				if t > end {
					end = t
				}
			}
		}
	}
	return end, nil
}

// Crash simulates sudden power loss of the *controller DRAM*: partial
// stripe buffers are lost unless the device is power-loss protected, and
// the chunk write pointers retreat to the last programmed stripe. NAND
// contents survive. Chunk states remain intact (they are reconstructed
// from NAND in reality; the chunk report is the durable source of truth).
func (d *Device) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for g := range d.chunks {
		for u := range d.chunks[g] {
			for c := range d.chunks[g][u] {
				m := &d.chunks[g][u][c]
				if m.state != ChunkOpen || len(m.buf) == 0 {
					continue
				}
				if d.opts.PowerLossProtected {
					// Capacitors flush the partial stripe with padding.
					padBytes := d.stripeBytes() - len(m.buf)
					buf := append(m.buf, make([]byte, padBytes)...)
					if _, err := d.programStripe(0, ChunkID{g, u, c}, m.bufBase, buf); err == nil {
						m.bufBase += d.geo.WSOpt
						m.wp = m.bufBase
					}
					d.statsMu.Lock()
					d.stats.PadSectors += int64(padBytes / d.geo.Chip.SectorSize)
					d.statsMu.Unlock()
				} else {
					// Buffered sectors vanish: the write pointer retreats.
					m.wp = m.bufBase
				}
				m.buf = nil
			}
		}
	}
}
