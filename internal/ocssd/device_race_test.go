package ocssd

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/vclock"
)

// raceGeometry returns a small dual-plane device for concurrency tests:
// 4 groups × 4 PUs with a handful of chunks per PU.
func raceGeometry() Geometry {
	g := DefaultGeometry()
	g.Groups = 4
	g.PUsPerGroup = 4
	g.ChunksPerPU = 4
	g.Chip.BlocksPerPlane = 4
	g.Chip.PagesPerBlock = 12
	g.CacheMB = 1
	return Finish(g)
}

// TestConcurrentDistinctPUs drives full write → read-back → reset cycles
// from 8 goroutines pinned to distinct parallel units. With the sharded
// data path, none of them share a lock; the test asserts that the
// aggregate statistics and every chunk's final state are exactly what
// the operation counts dictate. Run under -race this is the regression
// test for the per-PU locking model (DESIGN.md).
func TestConcurrentDistinctPUs(t *testing.T) {
	geo := raceGeometry()
	d, err := New(geo, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const iters = 5
	spc := geo.SectorsPerChunk()
	secSize := geo.Chip.SectorSize

	var wrote, readSectors, resets atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		g := w % geo.Groups
		u := w / geo.Groups // distinct (g,u) for all 8 workers
		wg.Add(1)
		go func(g, u, w int) {
			defer wg.Done()
			data := make([]byte, spc*secSize)
			for i := range data {
				data[i] = byte(w + i)
			}
			rd := make([]byte, spc*secSize)
			ppas := make([]PPA, spc)
			var now vclock.Time
			for it := 0; it < iters; it++ {
				id := ChunkID{Group: g, PU: u, Chunk: it % geo.ChunksPerPU}
				start, end, err := d.Append(now, id, data)
				if err != nil {
					errs <- err
					return
				}
				if start != 0 {
					t.Errorf("append to fresh chunk started at sector %d", start)
				}
				wrote.Add(int64(spc))
				for s := range ppas {
					ppas[s] = id.PPAOf(s)
				}
				end, err = d.VectorRead(end, ppas, rd)
				if err != nil {
					errs <- err
					return
				}
				readSectors.Add(int64(spc))
				if !bytes.Equal(rd, data) {
					t.Errorf("worker %d: read-back mismatch on %v", w, id)
				}
				end, err = d.Reset(end, id)
				if err != nil {
					errs <- err
					return
				}
				resets.Add(1)
				now = end
			}
		}(g, u, w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	s := d.Stats()
	if s.SectorsWritten != wrote.Load() {
		t.Errorf("SectorsWritten = %d, want %d", s.SectorsWritten, wrote.Load())
	}
	if s.SectorsRead != readSectors.Load() {
		t.Errorf("SectorsRead = %d, want %d", s.SectorsRead, readSectors.Load())
	}
	if s.Resets != resets.Load() {
		t.Errorf("Resets = %d, want %d", s.Resets, resets.Load())
	}
	if s.VectorWrites != int64(workers*iters) {
		t.Errorf("VectorWrites = %d, want %d", s.VectorWrites, workers*iters)
	}
	// Every chunk a worker touched was reset: the whole device must be
	// back to free with write pointers at zero.
	for _, ci := range d.Report() {
		if ci.State != ChunkFree {
			t.Errorf("%v: state %v after all resets", ci.ID, ci.State)
		}
		if ci.WP != 0 {
			t.Errorf("%v: wp %d after reset", ci.ID, ci.WP)
		}
	}
}

// TestConcurrentSamePU hammers one parallel unit from many goroutines,
// each appending to its own chunk, so the per-PU open-chunk accounting
// and the shared stripe-buffer free list are contended for real. The
// open count must end at zero and no write may be lost.
func TestConcurrentSamePU(t *testing.T) {
	geo := raceGeometry()
	geo.MaxOpenPerPU = geo.ChunksPerPU
	d, err := New(geo, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	workers := geo.ChunksPerPU // one chunk per goroutine, same PU
	spc := geo.SectorsPerChunk()
	secSize := geo.Chip.SectorSize
	unit := geo.WSMin * secSize

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := ChunkID{Group: 0, PU: 0, Chunk: w}
			data := make([]byte, unit)
			for i := range data {
				data[i] = byte(w + 1)
			}
			var now vclock.Time
			// Fill the chunk one ws_min unit at a time: every append
			// contends on the same PU shard.
			for s := 0; s < spc; s += geo.WSMin {
				_, end, err := d.Append(now, id, data)
				if err != nil {
					errs <- err
					return
				}
				now = end
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		ci, err := d.Chunk(ChunkID{Group: 0, PU: 0, Chunk: w})
		if err != nil {
			t.Fatal(err)
		}
		if ci.State != ChunkClosed || ci.WP != spc {
			t.Errorf("chunk %d: state %v wp %d, want closed/%d", w, ci.State, ci.WP, spc)
		}
	}
	if s := d.Stats(); s.SectorsWritten != int64(workers*spc) {
		t.Errorf("SectorsWritten = %d, want %d", s.SectorsWritten, workers*spc)
	}
}

// TestConcurrentMixedOps mixes writers, readers, resetters and report
// scans across overlapping PUs to shake out lock-ordering and torn-state
// bugs under -race. Correctness assertions are minimal (no worker may
// observe an error other than the expected state conflicts); the value
// of the test is the race detector coverage.
func TestConcurrentMixedOps(t *testing.T) {
	geo := raceGeometry()
	d, err := New(geo, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	spc := geo.SectorsPerChunk()
	secSize := geo.Chip.SectorSize

	var wg sync.WaitGroup
	// Writers fill and reset their own chunk on a shared group.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := ChunkID{Group: w % geo.Groups, PU: (w / 2) % geo.PUsPerGroup, Chunk: w % geo.ChunksPerPU}
			data := make([]byte, spc*secSize)
			var now vclock.Time
			for it := 0; it < 3; it++ {
				_, end, err := d.Append(now, id, data)
				if err != nil {
					return // a sibling writer owns this chunk: fine
				}
				end, err = d.Pad(end, id)
				if err != nil {
					return
				}
				end, err = d.Reset(end, id)
				if err != nil {
					return
				}
				now = end
			}
		}(w)
	}
	// Scanners read the chunk report concurrently.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				for _, ci := range d.Report() {
					if ci.WP < 0 || ci.WP > spc {
						t.Errorf("%v: impossible wp %d", ci.ID, ci.WP)
					}
				}
				d.Stats()
			}
		}()
	}
	wg.Wait()
}

// BenchmarkAppendReadReset measures the allocation profile of the device
// hot path: steady-state append → vector-read → reset cycles should be
// allocation-free once the stripe-buffer and page pools are warm.
func BenchmarkAppendReadReset(b *testing.B) {
	geo := raceGeometry()
	d, err := New(geo, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	spc := geo.SectorsPerChunk()
	data := make([]byte, spc*geo.Chip.SectorSize)
	for i := range data {
		data[i] = byte(i)
	}
	rd := make([]byte, len(data))
	ppas := make([]PPA, spc)
	id := ChunkID{}
	for s := range ppas {
		ppas[s] = id.PPAOf(s)
	}
	var now vclock.Time
	// Warm the pools with one full cycle.
	if _, end, err := d.Append(now, id, data); err != nil {
		b.Fatal(err)
	} else if end, err = d.VectorRead(end, ppas, rd); err != nil {
		b.Fatal(err)
	} else if now, err = d.Reset(end, id); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, end, err := d.Append(now, id, data)
		if err != nil {
			b.Fatal(err)
		}
		if end, err = d.VectorRead(end, ppas, rd); err != nil {
			b.Fatal(err)
		}
		if now, err = d.Reset(end, id); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCrossGroupTimingCommutes is the device-level audit behind the
// host's pipelined executor: on a cache-less device, the same per-group
// schedule of appends, reads and resets must yield bit-identical
// virtual completion times whether the groups run one after another on
// a single goroutine or concurrently on one goroutine per group. It
// proves no hidden cross-group (cross-PU, cross-channel) timing state
// exists outside the write-back cache — per-group channel buses and
// per-PU chip timelines commute, so disjoint-footprint overlap is safe.
func TestCrossGroupTimingCommutes(t *testing.T) {
	geo := raceGeometry()
	geo.CacheMB = 0 // cache admission is the one device-global timeline
	geo = Finish(geo)
	const iters = 4

	type opTime struct {
		G  int
		It int
		T  vclock.Time
	}
	schedule := func(d *Device, g int, sink func(opTime)) error {
		spc := geo.SectorsPerChunk()
		data := make([]byte, spc*geo.Chip.SectorSize)
		for i := range data {
			data[i] = byte(g + i)
		}
		rd := make([]byte, spc*geo.Chip.SectorSize)
		ppas := make([]PPA, spc)
		var now vclock.Time
		for it := 0; it < iters; it++ {
			id := ChunkID{Group: g, PU: it % geo.PUsPerGroup, Chunk: it % geo.ChunksPerPU}
			start, end, err := d.Append(now, id, data)
			if err != nil {
				return err
			}
			for s := range ppas {
				ppas[s] = id.PPAOf(start + s)
			}
			end2, err := d.VectorRead(end, ppas, rd)
			if err != nil {
				return err
			}
			end3, err := d.Reset(end2, id)
			if err != nil {
				return err
			}
			sink(opTime{G: g, It: it, T: end3})
			now = end3
		}
		return nil
	}

	run := func(concurrent bool) map[opTime]bool {
		d, err := New(geo, Options{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		times := make(map[opTime]bool)
		sink := func(ot opTime) {
			mu.Lock()
			times[ot] = true
			mu.Unlock()
		}
		if !concurrent {
			for g := 0; g < geo.Groups; g++ {
				if err := schedule(d, g, sink); err != nil {
					t.Fatal(err)
				}
			}
			return times
		}
		var wg sync.WaitGroup
		errs := make(chan error, geo.Groups)
		for g := 0; g < geo.Groups; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				if err := schedule(d, g, sink); err != nil {
					errs <- err
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		return times
	}

	serial := run(false)
	conc := run(true)
	if len(serial) != len(conc) {
		t.Fatalf("op counts differ: %d vs %d", len(serial), len(conc))
	}
	for ot := range serial {
		if !conc[ot] {
			t.Fatalf("completion %+v present serially, missing concurrently", ot)
		}
	}
}
