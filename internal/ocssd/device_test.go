package ocssd

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/nand"
	"repro/internal/vclock"
)

// smallGeo returns a tiny dual-plane TLC device for fast tests:
// 2 groups × 2 PUs × 8 chunks, 96 sectors per chunk, ws_opt = 24.
func smallGeo() Geometry {
	chip := nand.Geometry{
		Planes:         2,
		BlocksPerPlane: 8,
		PagesPerBlock:  12,
		SectorsPerPage: 4,
		SectorSize:     4096,
		OOBPerPage:     64,
		Cell:           nand.TLC,
	}
	return Finish(Geometry{
		Groups:       2,
		PUsPerGroup:  2,
		ChunksPerPU:  8,
		Chip:         chip,
		ChannelMBps:  800,
		CacheMBps:    3200,
		CacheMB:      4,
		MaxOpenPerPU: 4,
	})
}

func newDev(t *testing.T, geo Geometry, opts Options) *Device {
	t.Helper()
	d, err := New(geo, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func sectors(geo Geometry, n int, fill byte) []byte {
	return bytes.Repeat([]byte{fill}, n*geo.Chip.SectorSize)
}

func seqPPAs(id ChunkID, start, n int) []PPA {
	out := make([]PPA, n)
	for i := range out {
		out[i] = id.PPAOf(start + i)
	}
	return out
}

func TestPPAPackUnpack(t *testing.T) {
	f := func(g, u uint8, c, s uint16) bool {
		p := PPA{Group: int(g), PU: int(u), Chunk: int(c), Sector: int(s)}
		return Unpack(p.Pack()) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	p := PPA{Group: 3, PU: 1, Chunk: 70, Sector: 5}
	if p.Next().Sector != 6 || p.Next().Group != 3 {
		t.Fatal("Next wrong")
	}
	if p.ChunkOf() != (ChunkID{3, 1, 70}) {
		t.Fatal("ChunkOf wrong")
	}
	if (ChunkID{1, 2, 3}).PPAOf(9) != (PPA{1, 2, 3, 9}) {
		t.Fatal("PPAOf wrong")
	}
}

func TestGeometryDerivedValues(t *testing.T) {
	g := smallGeo()
	if g.WSMin != 4 {
		t.Fatalf("ws_min = %d, want 4", g.WSMin)
	}
	// Dual-plane TLC: 4 sectors × 3 paired pages × 2 planes = 24 (§2.2).
	if g.WSOpt != 24 {
		t.Fatalf("ws_opt = %d, want 24", g.WSOpt)
	}
	if g.UnitOfWriteBytes() != 96*1024 {
		t.Fatalf("unit of write = %d, want 96KB", g.UnitOfWriteBytes())
	}
	if g.SectorsPerChunk() != 96 {
		t.Fatalf("sectors/chunk = %d, want 96", g.SectorsPerChunk())
	}
	if g.StripesPerChunk() != 4 {
		t.Fatalf("stripes/chunk = %d, want 4", g.StripesPerChunk())
	}
	if g.TotalPUs() != 4 {
		t.Fatalf("total PUs = %d", g.TotalPUs())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestPaperGeometryMatchesFigure4(t *testing.T) {
	g := PaperGeometry()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.Groups != 8 || g.PUsPerGroup != 4 || g.ChunksPerPU != 1474 {
		t.Fatalf("structure = %d×%d×%d", g.Groups, g.PUsPerGroup, g.ChunksPerPU)
	}
	if g.SectorsPerChunk() != 6144 {
		t.Fatalf("sectors/chunk = %d, want 6144", g.SectorsPerChunk())
	}
	if g.ChunkBytes() != 24<<20 {
		t.Fatalf("chunk = %d bytes, want 24MB", g.ChunkBytes())
	}
	if g.UnitOfWriteBytes() != 96*1024 {
		t.Fatalf("unit of write = %d, want 96KB", g.UnitOfWriteBytes())
	}
	// SSTable sizing from §4.3: 32 PUs × 24MB chunk = 768MB.
	sst := int64(g.TotalPUs()) * g.ChunkBytes()
	if sst != 768<<20 {
		t.Fatalf("SSTable size = %d, want 768MB", sst)
	}
}

func TestGeometryValidateRejects(t *testing.T) {
	g := smallGeo()
	g.ChunksPerPU = 9 // more chunks than blocks per plane
	if g.Validate() == nil {
		t.Fatal("chunks > blocks should be rejected")
	}
	g = smallGeo()
	g.WSOpt = 7
	if g.Validate() == nil {
		t.Fatal("inconsistent ws_opt should be rejected")
	}
	g = smallGeo()
	g.Groups = 0
	if g.Validate() == nil {
		t.Fatal("zero groups should be rejected")
	}
	g = smallGeo()
	g.ChannelMBps = 0
	if g.Validate() == nil {
		t.Fatal("zero bandwidth should be rejected")
	}
}

func TestLocateCoversChunkExactlyOnce(t *testing.T) {
	g := smallGeo()
	seen := make(map[[3]int]bool)
	for s := 0; s < g.SectorsPerChunk(); s++ {
		l := g.locate(s)
		key := [3]int{l.plane, l.page, l.sector}
		if seen[key] {
			t.Fatalf("sector %d maps to duplicate location %v", s, key)
		}
		seen[key] = true
		if l.plane < 0 || l.plane >= g.Chip.Planes || l.page < 0 || l.page >= g.Chip.PagesPerBlock ||
			l.sector < 0 || l.sector >= g.Chip.SectorsPerPage {
			t.Fatalf("sector %d maps out of range: %+v", s, l)
		}
	}
	if len(seen) != g.SectorsPerChunk() {
		t.Fatalf("covered %d locations, want %d", len(seen), g.SectorsPerChunk())
	}
}

func TestLocateSequentialIsSequentialPerPlane(t *testing.T) {
	// Within each stripe, pages on one plane must be programmed in
	// ascending order, and across stripes pages never decrease.
	g := smallGeo()
	lastPage := make([]int, g.Chip.Planes)
	for i := range lastPage {
		lastPage[i] = -1
	}
	for s := 0; s < g.SectorsPerChunk(); s++ {
		l := g.locate(s)
		if l.page < lastPage[l.plane] {
			t.Fatalf("sector %d: page %d on plane %d after page %d", s, l.page, l.plane, lastPage[l.plane])
		}
		lastPage[l.plane] = l.page
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	geo := smallGeo()
	d := newDev(t, geo, Options{Seed: 1})
	id := ChunkID{0, 0, 0}
	data := make([]byte, geo.WSOpt*geo.Chip.SectorSize)
	for i := range data {
		data[i] = byte(i % 251)
	}
	end, err := d.VectorWrite(0, seqPPAs(id, 0, geo.WSOpt), data)
	if err != nil {
		t.Fatalf("VectorWrite: %v", err)
	}
	if end <= 0 {
		t.Fatal("write should consume virtual time")
	}
	got := make([]byte, len(data))
	if _, err := d.VectorRead(end, seqPPAs(id, 0, geo.WSOpt), got); err != nil {
		t.Fatalf("VectorRead: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round-trip mismatch")
	}
}

func TestWritePointerRule(t *testing.T) {
	geo := smallGeo()
	d := newDev(t, geo, Options{Seed: 1})
	id := ChunkID{0, 0, 0}
	// Writing at sector 4 of a free chunk violates the WP (must be 0).
	_, err := d.VectorWrite(0, seqPPAs(id, 4, 4), sectors(geo, 4, 1))
	if !errors.Is(err, ErrWritePointer) {
		t.Fatalf("err = %v, want ErrWritePointer", err)
	}
	if _, err = d.VectorWrite(0, seqPPAs(id, 0, 4), sectors(geo, 4, 1)); err != nil {
		t.Fatal(err)
	}
	// Rewriting sector 0 is also a WP violation.
	_, err = d.VectorWrite(0, seqPPAs(id, 0, 4), sectors(geo, 4, 1))
	if !errors.Is(err, ErrWritePointer) {
		t.Fatalf("rewrite err = %v, want ErrWritePointer", err)
	}
	info, _ := d.Chunk(id)
	if info.WP != 4 || info.State != ChunkOpen {
		t.Fatalf("chunk = %+v", info)
	}
}

func TestWriteSizeRule(t *testing.T) {
	geo := smallGeo()
	d := newDev(t, geo, Options{Seed: 1})
	id := ChunkID{0, 0, 0}
	_, err := d.VectorWrite(0, seqPPAs(id, 0, 3), sectors(geo, 3, 1))
	if !errors.Is(err, ErrWriteSize) {
		t.Fatalf("err = %v, want ErrWriteSize", err)
	}
	// Mismatched data length.
	_, err = d.VectorWrite(0, seqPPAs(id, 0, 4), sectors(geo, 3, 1))
	if !errors.Is(err, ErrDataSize) {
		t.Fatalf("err = %v, want ErrDataSize", err)
	}
}

func TestChunkFillsAndCloses(t *testing.T) {
	geo := smallGeo()
	d := newDev(t, geo, Options{Seed: 1})
	id := ChunkID{0, 0, 0}
	n := geo.SectorsPerChunk()
	if _, err := d.VectorWrite(0, seqPPAs(id, 0, n), sectors(geo, n, 9)); err != nil {
		t.Fatal(err)
	}
	info, _ := d.Chunk(id)
	if info.State != ChunkClosed || info.WP != n {
		t.Fatalf("chunk = %+v, want closed/full", info)
	}
	// Writing past a closed chunk fails.
	_, err := d.VectorWrite(0, []PPA{id.PPAOf(0)}, sectors(geo, 1, 1))
	if !errors.Is(err, ErrChunkState) && !errors.Is(err, ErrWriteSize) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteBeyondChunkCapacity(t *testing.T) {
	geo := smallGeo()
	d := newDev(t, geo, Options{Seed: 1})
	id := ChunkID{0, 0, 0}
	n := geo.SectorsPerChunk()
	ppas := seqPPAs(id, 0, n+geo.WSMin)
	_, err := d.VectorWrite(0, ppas, sectors(geo, n+geo.WSMin, 1))
	// The run exceeds the chunk: either the PPA check or the capacity
	// check must reject it.
	if err == nil {
		t.Fatal("overfull write should fail")
	}
}

func TestResetCycle(t *testing.T) {
	geo := smallGeo()
	d := newDev(t, geo, Options{Seed: 1})
	id := ChunkID{0, 0, 0}
	n := geo.SectorsPerChunk()
	if _, err := d.VectorWrite(0, seqPPAs(id, 0, n), sectors(geo, n, 9)); err != nil {
		t.Fatal(err)
	}
	end, err := d.Reset(0, id)
	if err != nil {
		t.Fatal(err)
	}
	if end < vclock.Time(d.chips[0][0].EraseTime()) {
		t.Fatalf("reset too fast: %v", end)
	}
	info, _ := d.Chunk(id)
	if info.State != ChunkFree || info.WP != 0 || info.Wear != 1 {
		t.Fatalf("after reset: %+v", info)
	}
	// Reset of a free chunk is a state error.
	if _, err := d.Reset(end, id); !errors.Is(err, ErrChunkState) {
		t.Fatalf("double reset err = %v", err)
	}
	// Chunk is writable again.
	if _, err := d.VectorWrite(end, seqPPAs(id, 0, 4), sectors(geo, 4, 2)); err != nil {
		t.Fatalf("write after reset: %v", err)
	}
}

func TestReadUnwrittenFails(t *testing.T) {
	geo := smallGeo()
	d := newDev(t, geo, Options{Seed: 1})
	id := ChunkID{0, 0, 0}
	dst := sectors(geo, 1, 0)
	_, err := d.VectorRead(0, []PPA{id.PPAOf(0)}, dst)
	if !errors.Is(err, ErrUnwritten) {
		t.Fatalf("err = %v, want ErrUnwritten", err)
	}
}

func TestSubStripeWriteBufferedAndReadable(t *testing.T) {
	// A ws_min write smaller than ws_opt stays in the controller buffer
	// (§2.2: the device abstracts planes and paired pages) and must be
	// readable immediately.
	geo := smallGeo()
	d := newDev(t, geo, Options{Seed: 1})
	id := ChunkID{0, 0, 0}
	data := sectors(geo, 4, 0x5A)
	end, err := d.VectorWrite(0, seqPPAs(id, 0, 4), data)
	if err != nil {
		t.Fatal(err)
	}
	got := sectors(geo, 4, 0)
	if _, err := d.VectorRead(end, seqPPAs(id, 0, 4), got); err != nil {
		t.Fatalf("read of buffered sectors: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("buffered read mismatch")
	}
	if d.Stats().CacheHitReads != 4 {
		t.Fatalf("cache hit reads = %d, want 4", d.Stats().CacheHitReads)
	}
}

func TestPadMakesDurableAndWastesSpace(t *testing.T) {
	geo := smallGeo()
	d := newDev(t, geo, Options{Seed: 1})
	id := ChunkID{0, 0, 0}
	if _, err := d.VectorWrite(0, seqPPAs(id, 0, 4), sectors(geo, 4, 0x11)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Pad(0, id); err != nil {
		t.Fatal(err)
	}
	info, _ := d.Chunk(id)
	if info.WP != geo.WSOpt {
		t.Fatalf("wp after pad = %d, want %d", info.WP, geo.WSOpt)
	}
	if d.Stats().PadSectors != int64(geo.WSOpt-4) {
		t.Fatalf("pad sectors = %d, want %d", d.Stats().PadSectors, geo.WSOpt-4)
	}
	// After a crash (no PLP) the padded data must survive.
	d.Crash()
	got := sectors(geo, 4, 0)
	if _, err := d.VectorRead(vclock.Time(vclock.Second), seqPPAs(id, 0, 4), got); err != nil {
		t.Fatalf("read after crash: %v", err)
	}
	if got[0] != 0x11 {
		t.Fatal("padded data lost")
	}
	// Padding an already-aligned chunk is a no-op.
	before := d.Stats().PadSectors
	if _, err := d.Pad(0, id); err != nil {
		t.Fatal(err)
	}
	if d.Stats().PadSectors != before {
		t.Fatal("no-op pad should not pad")
	}
}

func TestCrashLosesUnpaddedBuffer(t *testing.T) {
	geo := smallGeo()
	d := newDev(t, geo, Options{Seed: 1})
	id := ChunkID{0, 0, 0}
	if _, err := d.VectorWrite(0, seqPPAs(id, 0, 4), sectors(geo, 4, 0x22)); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	info, _ := d.Chunk(id)
	if info.WP != 0 {
		t.Fatalf("wp after crash = %d, want 0 (buffer lost)", info.WP)
	}
	dst := sectors(geo, 1, 0)
	if _, err := d.VectorRead(0, []PPA{id.PPAOf(0)}, dst); !errors.Is(err, ErrUnwritten) {
		t.Fatalf("read after crash = %v, want ErrUnwritten", err)
	}
	// The chunk must accept new writes at the retreated WP.
	if _, err := d.VectorWrite(0, seqPPAs(id, 0, 4), sectors(geo, 4, 0x33)); err != nil {
		t.Fatalf("write after crash: %v", err)
	}
}

func TestCrashWithPLPKeepsBuffer(t *testing.T) {
	geo := smallGeo()
	d := newDev(t, geo, Options{Seed: 1, PowerLossProtected: true})
	id := ChunkID{0, 0, 0}
	if _, err := d.VectorWrite(0, seqPPAs(id, 0, 4), sectors(geo, 4, 0x44)); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	info, _ := d.Chunk(id)
	if info.WP != geo.WSOpt {
		t.Fatalf("wp after PLP crash = %d, want %d", info.WP, geo.WSOpt)
	}
	got := sectors(geo, 4, 0)
	if _, err := d.VectorRead(vclock.Time(vclock.Second), seqPPAs(id, 0, 4), got); err != nil {
		t.Fatalf("read after PLP crash: %v", err)
	}
	if got[0] != 0x44 {
		t.Fatal("PLP data lost")
	}
	// Writes continue at the padded WP.
	if _, err := d.VectorWrite(0, seqPPAs(id, geo.WSOpt, 4), sectors(geo, 4, 1)); err != nil {
		t.Fatalf("write after PLP crash: %v", err)
	}
}

func TestOpenChunkLimit(t *testing.T) {
	geo := smallGeo()
	d := newDev(t, geo, Options{Seed: 1})
	for c := 0; c < geo.MaxOpenPerPU; c++ {
		id := ChunkID{0, 0, c}
		if _, err := d.VectorWrite(0, seqPPAs(id, 0, 4), sectors(geo, 4, 1)); err != nil {
			t.Fatal(err)
		}
	}
	id := ChunkID{0, 0, geo.MaxOpenPerPU}
	_, err := d.VectorWrite(0, seqPPAs(id, 0, 4), sectors(geo, 4, 1))
	if !errors.Is(err, ErrOpenLimit) {
		t.Fatalf("err = %v, want ErrOpenLimit", err)
	}
}

func TestGroupsDoNotInterfere(t *testing.T) {
	// §2.2: "The Open-Channel SSD controller guarantees that there is no
	// interferences across groups." Two full-chunk writes to different
	// groups must finish at (nearly) the same virtual time as one alone;
	// two writes to the same PU must serialize.
	geo := smallGeo()
	geo.CacheMB = 0 // write-through so media time is client-visible
	d := newDev(t, geo, Options{Seed: 1})
	n := geo.SectorsPerChunk()

	aloneEnd, err := d.VectorWrite(0, seqPPAs(ChunkID{0, 0, 0}, 0, n), sectors(geo, n, 1))
	if err != nil {
		t.Fatal(err)
	}
	alone := aloneEnd.Sub(0)

	d2 := newDev(t, geo, Options{Seed: 1})
	e1, err := d2.VectorWrite(0, seqPPAs(ChunkID{0, 0, 0}, 0, n), sectors(geo, n, 1))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := d2.VectorWrite(0, seqPPAs(ChunkID{1, 0, 0}, 0, n), sectors(geo, n, 2))
	if err != nil {
		t.Fatal(err)
	}
	cross := vclock.Max(e1, e2).Sub(0)
	if float64(cross) > 1.05*float64(alone) {
		t.Fatalf("cross-group writes interfered: alone=%v both=%v", alone, cross)
	}

	d3 := newDev(t, geo, Options{Seed: 1})
	s1, err := d3.VectorWrite(0, seqPPAs(ChunkID{0, 0, 0}, 0, n), sectors(geo, n, 1))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := d3.VectorWrite(0, seqPPAs(ChunkID{0, 0, 1}, 0, n), sectors(geo, n, 2))
	if err != nil {
		t.Fatal(err)
	}
	samePU := vclock.Max(s1, s2).Sub(0)
	if float64(samePU) < 1.5*float64(alone) {
		t.Fatalf("same-PU writes should serialize: alone=%v both=%v", alone, samePU)
	}
}

func TestWriteBackCacheHidesMediaLatency(t *testing.T) {
	// §4.3: "the Open-Channel SSD implements a write-back policy where
	// writes complete as soon as they hit the storage controller cache."
	geo := smallGeo()
	cached := newDev(t, geo, Options{Seed: 1})
	geoNC := geo
	geoNC.CacheMB = 0
	uncached := newDev(t, geoNC, Options{Seed: 1})

	n := geo.WSOpt
	id := ChunkID{0, 0, 0}
	e1, err := cached.VectorWrite(0, seqPPAs(id, 0, n), sectors(geo, n, 1))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := uncached.VectorWrite(0, seqPPAs(id, 0, n), sectors(geo, n, 1))
	if err != nil {
		t.Fatal(err)
	}
	if e1 >= e2 {
		t.Fatalf("cached write (%v) should beat uncached (%v)", e1, e2)
	}
	// The cached write should cost roughly the DRAM copy, far below tProg.
	if e1 > vclock.Time(500*vclock.Microsecond) {
		t.Fatalf("cached write too slow: %v", e1)
	}
}

func TestCacheBackpressure(t *testing.T) {
	// Writing far more than the cache capacity must eventually slow
	// admissions down to media drain speed.
	geo := smallGeo()
	geo.CacheMB = 1
	d := newDev(t, geo, Options{Seed: 1})
	n := geo.SectorsPerChunk()
	var now vclock.Time
	// Fill several chunks on one PU back-to-back.
	for c := 0; c < 6; c++ {
		end, err := d.VectorWrite(now, seqPPAs(ChunkID{0, 0, c}, 0, n), sectors(geo, n, byte(c)))
		if err != nil {
			t.Fatal(err)
		}
		now = end
	}
	// 6 chunks × 96 sectors × 4KB = 2.25MB through a 1MB cache: the last
	// admission must have waited on drains (program time scale, not DRAM).
	if now < vclock.Time(vclock.Millisecond) {
		t.Fatalf("backpressure absent: all writes completed at %v", now)
	}
}

func TestDeviceCopy(t *testing.T) {
	geo := smallGeo()
	d := newDev(t, geo, Options{Seed: 1})
	src := ChunkID{0, 0, 0}
	dst := ChunkID{1, 1, 0}
	data := sectors(geo, geo.WSOpt, 0x77)
	end, err := d.VectorWrite(0, seqPPAs(src, 0, geo.WSOpt), data)
	if err != nil {
		t.Fatal(err)
	}
	start, end2, err := d.Copy(end, seqPPAs(src, 0, geo.WSOpt), dst)
	if err != nil {
		t.Fatalf("Copy: %v", err)
	}
	if start != 0 {
		t.Fatalf("copy start sector = %d, want 0", start)
	}
	got := sectors(geo, geo.WSOpt, 0)
	if _, err := d.VectorRead(end2, seqPPAs(dst, 0, geo.WSOpt), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("copied data mismatch")
	}
	if d.Stats().Copies != 1 {
		t.Fatalf("copies = %d", d.Stats().Copies)
	}
}

func TestReport(t *testing.T) {
	geo := smallGeo()
	d := newDev(t, geo, Options{Seed: 1})
	rep := d.Report()
	want := geo.Groups * geo.PUsPerGroup * geo.ChunksPerPU
	if len(rep) != want {
		t.Fatalf("report has %d entries, want %d", len(rep), want)
	}
	for _, ci := range rep {
		if ci.State != ChunkFree {
			t.Fatalf("fresh chunk %v in state %v", ci.ID, ci.State)
		}
	}
}

func TestFactoryBadChunksOffline(t *testing.T) {
	geo := smallGeo()
	d := newDev(t, geo, Options{Seed: 3, Reliability: nand.Reliability{FactoryBadRate: 0.2}})
	var offline int
	for _, ci := range d.Report() {
		if ci.State == ChunkOffline {
			offline++
		}
	}
	if offline == 0 {
		t.Fatal("expected some offline chunks at 20% factory bad rate")
	}
	// Writing to an offline chunk fails.
	for _, ci := range d.Report() {
		if ci.State == ChunkOffline {
			_, err := d.VectorWrite(0, seqPPAs(ci.ID, 0, 4), sectors(geo, 4, 1))
			if !errors.Is(err, ErrOffline) {
				t.Fatalf("write to offline: %v", err)
			}
			break
		}
	}
}

func TestFlushAll(t *testing.T) {
	geo := smallGeo()
	d := newDev(t, geo, Options{Seed: 1})
	if _, err := d.VectorWrite(0, seqPPAs(ChunkID{0, 0, 0}, 0, 4), sectors(geo, 4, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.VectorWrite(0, seqPPAs(ChunkID{1, 0, 0}, 0, 4), sectors(geo, 4, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.FlushAll(0); err != nil {
		t.Fatal(err)
	}
	d.Crash() // nothing should be lost now
	got := sectors(geo, 4, 0)
	if _, err := d.VectorRead(vclock.Time(vclock.Second), seqPPAs(ChunkID{0, 0, 0}, 0, 4), got); err != nil {
		t.Fatalf("read after flush+crash: %v", err)
	}
	if got[0] != 1 {
		t.Fatal("flushed data lost")
	}
}

func TestStatsCounters(t *testing.T) {
	geo := smallGeo()
	d := newDev(t, geo, Options{Seed: 1})
	id := ChunkID{0, 0, 0}
	if _, err := d.VectorWrite(0, seqPPAs(id, 0, geo.WSOpt), sectors(geo, geo.WSOpt, 1)); err != nil {
		t.Fatal(err)
	}
	got := sectors(geo, geo.WSOpt, 0)
	if _, err := d.VectorRead(0, seqPPAs(id, 0, geo.WSOpt), got); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.VectorWrites != 1 || s.VectorReads != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.SectorsWritten != int64(geo.WSOpt) || s.SectorsRead != int64(geo.WSOpt) {
		t.Fatalf("sector counts = %d/%d", s.SectorsWritten, s.SectorsRead)
	}
}

func TestVectorWriteScatterAcrossChunks(t *testing.T) {
	geo := smallGeo()
	d := newDev(t, geo, Options{Seed: 1})
	ppas := append(seqPPAs(ChunkID{0, 0, 0}, 0, 4), seqPPAs(ChunkID{1, 1, 2}, 0, 4)...)
	data := sectors(geo, 8, 0xEE)
	if _, err := d.VectorWrite(0, ppas, data); err != nil {
		t.Fatalf("scatter write: %v", err)
	}
	for _, id := range []ChunkID{{0, 0, 0}, {1, 1, 2}} {
		info, _ := d.Chunk(id)
		if info.WP != 4 {
			t.Fatalf("%v wp = %d, want 4", id, info.WP)
		}
	}
}

func TestMediaReadAfterCacheDrain(t *testing.T) {
	geo := smallGeo()
	d := newDev(t, geo, Options{Seed: 1})
	id := ChunkID{0, 0, 0}
	if _, err := d.VectorWrite(0, seqPPAs(id, 0, geo.WSOpt), sectors(geo, geo.WSOpt, 1)); err != nil {
		t.Fatal(err)
	}
	// Long after the write, reads come from media and cost tR.
	longAfter := vclock.Time(10 * vclock.Second)
	dst := sectors(geo, 4, 0)
	end, err := d.VectorRead(longAfter, seqPPAs(id, 0, 4), dst)
	if err != nil {
		t.Fatal(err)
	}
	if end.Sub(longAfter) < d.chips[0][0].ReadTime() {
		t.Fatalf("media read too fast: %v", end.Sub(longAfter))
	}
	if d.Stats().MediaReads == 0 {
		t.Fatal("expected media reads")
	}
}

// Property: any in-order sequence of ws_min-multiple appends round-trips.
func TestAppendRoundTripProperty(t *testing.T) {
	geo := smallGeo()
	f := func(sizes []uint8) bool {
		d, err := New(geo, Options{Seed: 7})
		if err != nil {
			return false
		}
		id := ChunkID{0, 1, 3}
		written := 0
		var fills []byte
		now := vclock.Time(0)
		for i, s := range sizes {
			n := (int(s)%3 + 1) * geo.WSMin // 4, 8 or 12 sectors
			if written+n > geo.SectorsPerChunk() {
				break
			}
			fill := byte(i + 1)
			start, end, err := d.Append(now, id, sectors(geo, n, fill))
			if err != nil || start != written {
				return false
			}
			now = end
			written += n
			for j := 0; j < n; j++ {
				fills = append(fills, fill)
			}
		}
		if written == 0 {
			return true
		}
		got := make([]byte, written*geo.Chip.SectorSize)
		if _, err := d.VectorRead(now, seqPPAs(id, 0, written), got); err != nil {
			return false
		}
		for s := 0; s < written; s++ {
			if got[s*geo.Chip.SectorSize] != fills[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: chunk wear equals the number of resets, and WP never exceeds
// the chunk capacity.
func TestWearProperty(t *testing.T) {
	geo := smallGeo()
	f := func(rounds uint8) bool {
		d, err := New(geo, Options{Seed: 11})
		if err != nil {
			return false
		}
		id := ChunkID{1, 0, 5}
		n := geo.SectorsPerChunk()
		r := int(rounds%5) + 1
		now := vclock.Time(0)
		for i := 0; i < r; i++ {
			end, err := d.VectorWrite(now, seqPPAs(id, 0, n), sectors(geo, n, byte(i)))
			if err != nil {
				return false
			}
			end2, err := d.Reset(end, id)
			if err != nil {
				return false
			}
			now = end2
		}
		info, _ := d.Chunk(id)
		return info.Wear == r && info.WP == 0 && info.State == ChunkFree
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkStateString(t *testing.T) {
	if ChunkFree.String() != "free" || ChunkOpen.String() != "open" ||
		ChunkClosed.String() != "closed" || ChunkOffline.String() != "offline" {
		t.Fatal("state strings wrong")
	}
}
