package ocssd

import (
	"errors"
	"fmt"

	"repro/internal/nand"
)

// Geometry describes an Open-Channel 2.0 device (§2.2): groups of
// parallel units, chunks per PU, and the write units derived from the
// underlying NAND geometry. One group maps to one channel and one PU to
// one chip: the controller guarantees no interference across groups.
type Geometry struct {
	Groups      int // independent channels
	PUsPerGroup int // chips per channel
	ChunksPerPU int // chunks (erase units) per parallel unit

	Chip nand.Geometry // per-chip NAND geometry

	// WSMin is the minimum write size in sectors (logical blocks); writes
	// must be multiples of it and land at the chunk write pointer.
	WSMin int
	// WSOpt is the optimal write size in sectors: one full wordline
	// stripe across planes and paired pages — the paper's "unit of
	// write" (24 sectors = 96 KB on a dual-plane TLC drive).
	WSOpt int

	ChannelMBps  float64 // NAND channel bus bandwidth per group
	CacheMBps    float64 // controller DRAM copy bandwidth
	CacheMB      int     // write-back cache size; 0 disables write-back
	MaxOpenPerPU int     // open chunk limit per PU
}

// DefaultGeometry returns a scaled-down dual-plane TLC device with the
// paper's structural ratios: 8 groups × 4 PUs, 96 KB unit of write,
// 24 MB-shaped chunks scaled to fit in memory.
func DefaultGeometry() Geometry {
	chip := nand.Geometry{
		Planes:         2,
		BlocksPerPlane: 64,
		PagesPerBlock:  48, // 48 pages × 2 planes × 4 sectors = 384 sectors/chunk = 1.5 MB
		SectorsPerPage: 4,
		SectorSize:     4096,
		OOBPerPage:     64,
		Cell:           nand.TLC,
	}
	return Finish(Geometry{
		Groups:       8,
		PUsPerGroup:  4,
		ChunksPerPU:  64,
		Chip:         chip,
		ChannelMBps:  800,
		CacheMBps:    3200,
		CacheMB:      64,
		MaxOpenPerPU: 8,
	})
}

// PaperGeometry returns the exact geometry of Figure 4: 8 groups,
// 4 PUs per group, 1474 chunks per PU, 6144 sectors per chunk (24 MB),
// 4 KB sectors, 96 KB unit of write. At ~1.4 TB it is only usable for
// geometry arithmetic, not for data-holding simulation.
func PaperGeometry() Geometry {
	chip := nand.Geometry{
		Planes:         2,
		BlocksPerPlane: 1474,
		PagesPerBlock:  768, // 768 pages × 2 planes × 4 sectors = 6144 sectors
		SectorsPerPage: 4,
		SectorSize:     4096,
		OOBPerPage:     128,
		Cell:           nand.TLC,
	}
	return Finish(Geometry{
		Groups:       8,
		PUsPerGroup:  4,
		ChunksPerPU:  1474,
		Chip:         chip,
		ChannelMBps:  800,
		CacheMBps:    3200,
		CacheMB:      512,
		MaxOpenPerPU: 8,
	})
}

// Finish fills the derived fields (WSMin, WSOpt) from the chip geometry
// and returns the completed geometry.
func Finish(g Geometry) Geometry {
	g.WSMin = g.Chip.SectorsPerPage
	g.WSOpt = g.Chip.SectorsPerPage * g.Chip.Cell.BitsPerCell() * g.Chip.Planes
	return g
}

// Validate reports whether the geometry is internally consistent.
func (g Geometry) Validate() error {
	if err := g.Chip.Validate(); err != nil {
		return err
	}
	switch {
	case g.Groups <= 0 || g.Groups > 256:
		return fmt.Errorf("ocssd: groups must be in [1,256], got %d", g.Groups)
	case g.PUsPerGroup <= 0 || g.PUsPerGroup > 256:
		return fmt.Errorf("ocssd: PUs per group must be in [1,256], got %d", g.PUsPerGroup)
	case g.ChunksPerPU <= 0:
		return errors.New("ocssd: chunks per PU must be positive")
	case g.ChunksPerPU > g.Chip.BlocksPerPlane:
		return fmt.Errorf("ocssd: %d chunks per PU exceed %d blocks per plane",
			g.ChunksPerPU, g.Chip.BlocksPerPlane)
	case g.WSMin != g.Chip.SectorsPerPage:
		return fmt.Errorf("ocssd: ws_min %d must equal sectors per page %d", g.WSMin, g.Chip.SectorsPerPage)
	case g.WSOpt != g.Chip.SectorsPerPage*g.Chip.Cell.BitsPerCell()*g.Chip.Planes:
		return fmt.Errorf("ocssd: ws_opt %d inconsistent with chip geometry", g.WSOpt)
	case g.ChannelMBps <= 0 || g.CacheMBps <= 0:
		return errors.New("ocssd: bandwidths must be positive")
	case g.CacheMB < 0:
		return errors.New("ocssd: negative cache size")
	case g.MaxOpenPerPU <= 0:
		return errors.New("ocssd: MaxOpenPerPU must be positive")
	}
	return nil
}

// SectorsPerChunk reports the number of logical blocks in one chunk:
// planes × pages × sectors-per-page.
func (g Geometry) SectorsPerChunk() int {
	return g.Chip.Planes * g.Chip.PagesPerBlock * g.Chip.SectorsPerPage
}

// ChunkBytes reports the capacity of one chunk in bytes.
func (g Geometry) ChunkBytes() int64 {
	return int64(g.SectorsPerChunk()) * int64(g.Chip.SectorSize)
}

// TotalPUs reports the number of parallel units on the device.
func (g Geometry) TotalPUs() int { return g.Groups * g.PUsPerGroup }

// TotalBytes reports the device capacity in bytes.
func (g Geometry) TotalBytes() int64 {
	return int64(g.TotalPUs()) * int64(g.ChunksPerPU) * g.ChunkBytes()
}

// UnitOfWriteBytes reports ws_opt in bytes (the paper's unit of write).
func (g Geometry) UnitOfWriteBytes() int { return g.WSOpt * g.Chip.SectorSize }

// StripesPerChunk reports the number of ws_opt stripes in one chunk.
func (g Geometry) StripesPerChunk() int { return g.SectorsPerChunk() / g.WSOpt }

// CheckPPA reports whether the PPA addresses a sector on this device.
func (g Geometry) CheckPPA(p PPA) error {
	if p.Group < 0 || p.Group >= g.Groups ||
		p.PU < 0 || p.PU >= g.PUsPerGroup ||
		p.Chunk < 0 || p.Chunk >= g.ChunksPerPU ||
		p.Sector < 0 || p.Sector >= g.SectorsPerChunk() {
		return fmt.Errorf("%w: %v", ErrAddress, p)
	}
	return nil
}

func (g Geometry) String() string {
	return fmt.Sprintf("%d groups × %d PUs × %d chunks × %d sectors (%s, %d planes, ws_opt=%dKB, %.1fGB)",
		g.Groups, g.PUsPerGroup, g.ChunksPerPU, g.SectorsPerChunk(), g.Chip.Cell,
		g.Chip.Planes, g.UnitOfWriteBytes()/1024, float64(g.TotalBytes())/1e9)
}

// sectorLoc maps a chunk-relative sector index to its NAND location.
// Layout: sectors fill one wordline stripe at a time — within a stripe,
// plane-major then paired-page then sector-in-page — so that sequential
// chunk writes program pages strictly sequentially on every plane.
type sectorLoc struct {
	plane  int
	page   int // page index within the block
	sector int // sector within the page
}

func (g Geometry) locate(sector int) sectorLoc {
	spp := g.Chip.SectorsPerPage
	bits := g.Chip.Cell.BitsPerCell()
	stripe := sector / g.WSOpt
	within := sector % g.WSOpt
	plane := within / (spp * bits)
	rem := within % (spp * bits)
	paired := rem / spp
	return sectorLoc{
		plane:  plane,
		page:   stripe*bits + paired,
		sector: rem % spp,
	}
}
