package ocssd

import "fmt"

// PPA is a physical page address in the Open-Channel 2.0 hierarchy:
// group / parallel unit / chunk / logical block (sector) within the chunk
// (§2.2). Sector is the index of the logical block inside the chunk.
type PPA struct {
	Group  int
	PU     int
	Chunk  int
	Sector int
}

// Pack encodes the PPA into 64 bits: 8 bits group, 8 bits PU, 24 bits
// chunk, 24 bits sector. This is the on-log and in-map representation.
func (p PPA) Pack() uint64 {
	return uint64(p.Group)&0xff<<56 |
		uint64(p.PU)&0xff<<48 |
		uint64(p.Chunk)&0xffffff<<24 |
		uint64(p.Sector)&0xffffff
}

// Unpack decodes a PPA packed with Pack.
func Unpack(v uint64) PPA {
	return PPA{
		Group:  int(v >> 56 & 0xff),
		PU:     int(v >> 48 & 0xff),
		Chunk:  int(v >> 24 & 0xffffff),
		Sector: int(v & 0xffffff),
	}
}

func (p PPA) String() string {
	return fmt.Sprintf("ppa(g%d u%d c%d s%d)", p.Group, p.PU, p.Chunk, p.Sector)
}

// Next returns the PPA of the following sector in the same chunk.
func (p PPA) Next() PPA {
	p.Sector++
	return p
}

// ChunkID identifies one chunk on the device.
type ChunkID struct {
	Group int
	PU    int
	Chunk int
}

// ChunkOf returns the chunk the PPA belongs to.
func (p PPA) ChunkOf() ChunkID { return ChunkID{p.Group, p.PU, p.Chunk} }

func (c ChunkID) String() string {
	return fmt.Sprintf("chunk(g%d u%d c%d)", c.Group, c.PU, c.Chunk)
}

// PPAOf returns the PPA of sector s within the chunk.
func (c ChunkID) PPAOf(s int) PPA {
	return PPA{Group: c.Group, PU: c.PU, Chunk: c.Chunk, Sector: s}
}
