// Package offload is the computational-storage subsystem: the
// in-device compute engine and the wire framing for the host
// interface's offload commands (OpOffloadGet, OpOffloadScan,
// OpOffloadCompact).
//
// The OX lineage is explicitly a computational-storage controller —
// the application-specific FTLs already move LSM mechanics into the
// device, and the natural next step is moving *queries* there: resolve
// a point lookup inside the controller and return only the value,
// filter a range scan so only matching sectors cross the host link,
// merge SSTables device-side so compaction traffic never leaves the
// device at all.
//
// # Cost model
//
// Every offload splits into three virtual-time charges:
//
//   - media cost — the NAND reads/writes the device performs either
//     way; charged by the FTL's existing media model (per-group channel
//     buses, per-PU chip timelines).
//   - in-device compute cost — the offload engine's scan/merge units:
//     a fixed SetupCPU per command plus bytes / ScanMBps (search,
//     filter) or bytes / MergeMBps (compaction merge). This charge does
//     not exist on the host-side path.
//   - host-link transfer cost — charged by the host interface per
//     command on what actually crosses the link. The offload result is
//     a value, the matching pages, or a handful of table metas; the
//     host-side alternative moves every raw block.
//
// The crossover follows: in-storage execution wins while the compute
// surcharge is smaller than the host-link transfer it avoids (small
// values, low scan selectivity), and loses once most of the data would
// cross the link anyway.
//
// # Determinism and overlap
//
// Point-lookup compute is charged to a per-group lane, so offload Gets
// on disjoint device groups reserve disjoint virtual-time resources and
// may execute concurrently under the pipelined executor (the adapter
// advertises a GroupFootprint). Scans and compactions use the shared
// device-wide unit and run under exclusive footprints. All statistics
// are atomic counters, order-independent by construction.
package offload

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/vclock"
)

// Config sets the engine's virtual cost parameters.
type Config struct {
	// SetupCPU is the fixed in-device command setup charge
	// (default 2µs).
	SetupCPU vclock.Duration
	// ScanMBps is the in-device search/filter bandwidth over raw block
	// bytes (default 19200 MB/s — the accelerator streams from the
	// device-side buffers at aggregate internal bandwidth, well above
	// host-link class; the crossover only exists because of this gap).
	ScanMBps float64
	// MergeMBps is the in-device compaction-merge bandwidth over the
	// input block bytes (default 1600 MB/s).
	MergeMBps float64
}

// DefaultConfig returns the default cost parameters.
func DefaultConfig() Config {
	return Config{
		SetupCPU:  2 * vclock.Microsecond,
		ScanMBps:  19200,
		MergeMBps: 1600,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.SetupCPU <= 0 {
		c.SetupCPU = d.SetupCPU
	}
	if c.ScanMBps <= 0 {
		c.ScanMBps = d.ScanMBps
	}
	if c.MergeMBps <= 0 {
		c.MergeMBps = d.MergeMBps
	}
	return c
}

// Engine is one device's offload compute: a per-group lane for point
// lookups (so disjoint-group Gets commute in virtual time) and a
// shared device-wide unit for scans and merges (which run under
// exclusive footprints anyway). The engine owns the namespace's
// offload statistics; counters are atomic so concurrent overlapped
// offloads need no ordering.
type Engine struct {
	cfg    Config
	lanes  []*vclock.Resource
	shared *vclock.Resource

	gets         atomic.Int64
	getHits      atomic.Int64
	scans        atomic.Int64
	pagesScanned atomic.Int64
	pagesMatched atomic.Int64
	compactions  atomic.Int64
	blocksMerged atomic.Int64
	bytesOut     atomic.Int64
	bytesDirect  atomic.Int64
	computeBusy  atomic.Int64
}

// NewEngine builds an engine with one lookup lane per device group.
func NewEngine(groups int, cfg Config) *Engine {
	if groups < 1 {
		groups = 1
	}
	e := &Engine{
		cfg:    cfg.withDefaults(),
		lanes:  make([]*vclock.Resource, groups),
		shared: vclock.NewResource("offload/shared"),
	}
	for g := range e.lanes {
		e.lanes[g] = vclock.NewResource(fmt.Sprintf("offload/lane%d", g))
	}
	return e
}

// Config reports the engine's effective cost parameters.
func (e *Engine) Config() Config { return e.cfg }

// Lanes reports the number of per-group lookup lanes.
func (e *Engine) Lanes() int { return len(e.lanes) }

// charge reserves dur on r at now and accounts the busy time.
func (e *Engine) charge(r *vclock.Resource, now vclock.Time, dur vclock.Duration) vclock.Time {
	_, end := r.Acquire(now, dur)
	e.computeBusy.Add(int64(dur))
	return end
}

// GetCost charges the in-device point-lookup compute — setup plus a
// scan of blockBytes — to group's lane and returns the completion
// instant. Groups outside the lane range fall back to the shared unit.
func (e *Engine) GetCost(now vclock.Time, group, blockBytes int) vclock.Time {
	dur := e.cfg.SetupCPU + vclock.DurationFor(int64(blockBytes), e.cfg.ScanMBps)
	r := e.shared
	if group >= 0 && group < len(e.lanes) {
		r = e.lanes[group]
	}
	return e.charge(r, now, dur)
}

// ScanCost charges the in-device predicate filter over bytes of raw
// pages to the shared unit and returns the completion instant.
func (e *Engine) ScanCost(now vclock.Time, bytes int64) vclock.Time {
	dur := e.cfg.SetupCPU + vclock.DurationFor(bytes, e.cfg.ScanMBps)
	return e.charge(e.shared, now, dur)
}

// MergeCost charges the in-device compaction merge over bytes of input
// blocks to the shared unit and returns the completion instant.
func (e *Engine) MergeCost(now vclock.Time, bytes int64) vclock.Time {
	dur := e.cfg.SetupCPU + vclock.DurationFor(bytes, e.cfg.MergeMBps)
	return e.charge(e.shared, now, dur)
}

// NoteGet records one offloaded point lookup: whether the key was
// found, the bytes returned over the host link, and the bytes the
// host-side alternative (shipping the whole block) would have moved.
func (e *Engine) NoteGet(hit bool, bytesOut, bytesDirect int) {
	e.gets.Add(1)
	if hit {
		e.getHits.Add(1)
	}
	e.bytesOut.Add(int64(bytesOut))
	e.bytesDirect.Add(int64(bytesDirect))
}

// NoteScan records one offloaded filtered scan.
func (e *Engine) NoteScan(scanned, matched int, bytesOut, bytesDirect int64) {
	e.scans.Add(1)
	e.pagesScanned.Add(int64(scanned))
	e.pagesMatched.Add(int64(matched))
	e.bytesOut.Add(bytesOut)
	e.bytesDirect.Add(bytesDirect)
}

// NoteCompact records one offloaded compaction: blocks merged
// device-side, the bytes returned over the host link (table metas),
// and the block traffic a host-side merge would have moved.
func (e *Engine) NoteCompact(blocks int, bytesOut, bytesDirect int64) {
	e.compactions.Add(1)
	e.blocksMerged.Add(int64(blocks))
	e.bytesOut.Add(bytesOut)
	e.bytesDirect.Add(bytesDirect)
}

// Stats is the LogOffload payload: one namespace's computational-
// storage counters.
type Stats struct {
	// Gets and GetHits count offloaded point lookups and how many
	// found the key in the searched block.
	Gets, GetHits int64
	// Scans, PagesScanned and PagesMatched count offloaded filtered
	// scans and their selectivity.
	Scans, PagesScanned, PagesMatched int64
	// Compactions and BlocksMerged count offloaded device-side merges.
	Compactions, BlocksMerged int64
	// BytesOut is what offload results actually moved over the host
	// link; BytesDirect is what the host-side alternatives would have
	// moved. BytesDirect − BytesOut is the link traffic the offloads
	// saved.
	BytesOut, BytesDirect int64
	// ComputeBusy is the in-device compute time the offloads consumed.
	ComputeBusy vclock.Duration
}

// BytesSaved reports the host-link bytes avoided by offloading.
func (s Stats) BytesSaved() int64 { return s.BytesDirect - s.BytesOut }

// Stats snapshots the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Gets:         e.gets.Load(),
		GetHits:      e.getHits.Load(),
		Scans:        e.scans.Load(),
		PagesScanned: e.pagesScanned.Load(),
		PagesMatched: e.pagesMatched.Load(),
		Compactions:  e.compactions.Load(),
		BlocksMerged: e.blocksMerged.Load(),
		BytesOut:     e.bytesOut.Load(),
		BytesDirect:  e.bytesDirect.Load(),
		ComputeBusy:  vclock.Duration(e.computeBusy.Load()),
	}
}

// ErrBadFrame rejects a malformed offload request or result encoding.
var ErrBadFrame = errors.New("offload: malformed frame")

// --- Predicate (OpOffloadScan request) -----------------------------------

// Predicate is the filter of an offloaded scan: a page matches when
// its byte at Offset, masked with Mask, equals Value & Mask. One
// masked-byte comparison is deliberately minimal — enough to dial
// selectivity from 0 to 1 in the crossover experiment while keeping
// the wire format a fixed six bytes.
type Predicate struct {
	// Offset is the byte offset probed within each page.
	Offset uint32
	// Mask and Value define the match: page[Offset]&Mask == Value&Mask.
	Mask, Value byte
}

// predicateLen is the encoded size: offset u32 | mask | value.
const predicateLen = 6

// Match reports whether page satisfies the predicate.
func (p Predicate) Match(page []byte) bool {
	if int64(p.Offset) >= int64(len(page)) {
		return false
	}
	return page[p.Offset]&p.Mask == p.Value&p.Mask
}

// Encode serializes the predicate for Command.Data.
func (p Predicate) Encode() []byte {
	b := make([]byte, predicateLen)
	binary.LittleEndian.PutUint32(b, p.Offset)
	b[4], b[5] = p.Mask, p.Value
	return b
}

// DecodePredicate parses an encoded predicate.
func DecodePredicate(b []byte) (Predicate, error) {
	if len(b) != predicateLen {
		return Predicate{}, fmt.Errorf("%w: predicate is %d bytes, want %d", ErrBadFrame, len(b), predicateLen)
	}
	return Predicate{
		Offset: binary.LittleEndian.Uint32(b),
		Mask:   b[4],
		Value:  b[5],
	}, nil
}

// --- Get result (OpOffloadGet) -------------------------------------------

const (
	getFound   byte = 1 << 0
	getDeleted byte = 1 << 1
)

// EncodeGetResult frames an offloaded point lookup's answer:
// flags | value. Only the value — never the block — crosses the link.
func EncodeGetResult(value []byte, deleted, found bool) []byte {
	var flags byte
	if found {
		flags |= getFound
	}
	if deleted {
		flags |= getDeleted
	}
	out := make([]byte, 1+len(value))
	out[0] = flags
	copy(out[1:], value)
	return out
}

// DecodeGetResult parses an EncodeGetResult frame.
func DecodeGetResult(b []byte) (value []byte, deleted, found bool, err error) {
	if len(b) < 1 {
		return nil, false, false, fmt.Errorf("%w: empty get result", ErrBadFrame)
	}
	return b[1:], b[0]&getDeleted != 0, b[0]&getFound != 0, nil
}

// --- Scan result (OpOffloadScan) -----------------------------------------

// EncodeScanResult frames a filtered scan's answer: the page size,
// the matching page indexes (relative to the scanned extent) and the
// matching pages' raw bytes, concatenated in index order.
func EncodeScanResult(pageSize int, idx []uint32, pages []byte) []byte {
	out := make([]byte, 8+4*len(idx)+len(pages))
	binary.LittleEndian.PutUint32(out, uint32(pageSize))
	binary.LittleEndian.PutUint32(out[4:], uint32(len(idx)))
	for i, x := range idx {
		binary.LittleEndian.PutUint32(out[8+4*i:], x)
	}
	copy(out[8+4*len(idx):], pages)
	return out
}

// DecodeScanResult parses an EncodeScanResult frame.
func DecodeScanResult(b []byte) (pageSize int, idx []uint32, pages []byte, err error) {
	if len(b) < 8 {
		return 0, nil, nil, fmt.Errorf("%w: scan result header short", ErrBadFrame)
	}
	pageSize = int(binary.LittleEndian.Uint32(b))
	count := int(binary.LittleEndian.Uint32(b[4:]))
	if pageSize <= 0 || count < 0 {
		return 0, nil, nil, fmt.Errorf("%w: scan result header invalid", ErrBadFrame)
	}
	want := 8 + 4*count + pageSize*count
	if len(b) != want {
		return 0, nil, nil, fmt.Errorf("%w: scan result is %d bytes, want %d", ErrBadFrame, len(b), want)
	}
	if count > 0 {
		idx = make([]uint32, count)
		for i := range idx {
			idx[i] = binary.LittleEndian.Uint32(b[8+4*i:])
		}
	}
	return pageSize, idx, b[8+4*count:], nil
}

// --- Compact request / result (OpOffloadCompact) -------------------------

// TableRef names one committed SSTable input of an offloaded
// compaction: the device-side merge needs only the handle and block
// count to iterate it.
type TableRef struct {
	ID     uint64
	Blocks uint32
}

// CompactRequest is the OpOffloadCompact payload.
type CompactRequest struct {
	// Inputs are merged newest-first-shadows-oldest, in slice order
	// (the same precedence rule the host-side merge uses).
	Inputs []TableRef
	// DropDeletes discards tombstones (bottom-level compaction).
	DropDeletes bool
	// BitsPerKey sizes the output tables' bloom filters (0 = builder
	// default).
	BitsPerKey uint16
}

// Encode serializes the request for Command.Data.
func (r CompactRequest) Encode() []byte {
	out := make([]byte, 7+12*len(r.Inputs))
	binary.LittleEndian.PutUint32(out, uint32(len(r.Inputs)))
	if r.DropDeletes {
		out[4] = 1
	}
	binary.LittleEndian.PutUint16(out[5:], r.BitsPerKey)
	for i, in := range r.Inputs {
		binary.LittleEndian.PutUint64(out[7+12*i:], in.ID)
		binary.LittleEndian.PutUint32(out[15+12*i:], in.Blocks)
	}
	return out
}

// DecodeCompactRequest parses an encoded compaction request.
func DecodeCompactRequest(b []byte) (CompactRequest, error) {
	if len(b) < 7 {
		return CompactRequest{}, fmt.Errorf("%w: compact request header short", ErrBadFrame)
	}
	count := int(binary.LittleEndian.Uint32(b))
	if count < 0 || len(b) != 7+12*count {
		return CompactRequest{}, fmt.Errorf("%w: compact request is %d bytes, want %d", ErrBadFrame, len(b), 7+12*count)
	}
	r := CompactRequest{
		DropDeletes: b[4] == 1,
		BitsPerKey:  binary.LittleEndian.Uint16(b[5:]),
		Inputs:      make([]TableRef, count),
	}
	for i := range r.Inputs {
		r.Inputs[i].ID = binary.LittleEndian.Uint64(b[7+12*i:])
		r.Inputs[i].Blocks = binary.LittleEndian.Uint32(b[15+12*i:])
	}
	return r, nil
}

// EncodeCompactResult frames the merge's answer: the output tables'
// marshaled metadata blobs, length-prefixed in output order.
func EncodeCompactResult(metas [][]byte) []byte {
	n := 4
	for _, m := range metas {
		n += 4 + len(m)
	}
	out := make([]byte, n)
	binary.LittleEndian.PutUint32(out, uint32(len(metas)))
	off := 4
	for _, m := range metas {
		binary.LittleEndian.PutUint32(out[off:], uint32(len(m)))
		off += 4
		copy(out[off:], m)
		off += len(m)
	}
	return out
}

// DecodeCompactResult parses an EncodeCompactResult frame.
func DecodeCompactResult(b []byte) ([][]byte, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: compact result header short", ErrBadFrame)
	}
	count := int(binary.LittleEndian.Uint32(b))
	if count < 0 || count > len(b) {
		return nil, fmt.Errorf("%w: compact result count %d", ErrBadFrame, count)
	}
	metas := make([][]byte, 0, count)
	off := 4
	for i := 0; i < count; i++ {
		if off+4 > len(b) {
			return nil, fmt.Errorf("%w: compact result truncated", ErrBadFrame)
		}
		l := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if l < 0 || off+l > len(b) {
			return nil, fmt.Errorf("%w: compact result truncated", ErrBadFrame)
		}
		metas = append(metas, b[off:off+l])
		off += l
	}
	if off != len(b) {
		return nil, fmt.Errorf("%w: compact result has %d trailing bytes", ErrBadFrame, len(b)-off)
	}
	return metas, nil
}
