package offload

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/vclock"
)

func TestPredicateRoundtrip(t *testing.T) {
	p := Predicate{Offset: 1234, Mask: 0x0F, Value: 0xA5}
	got, err := DecodePredicate(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("roundtrip = %+v, want %+v", got, p)
	}
}

func TestPredicateRejectsBadLength(t *testing.T) {
	for _, n := range []int{0, 5, 7} {
		if _, err := DecodePredicate(make([]byte, n)); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("len %d: err = %v, want ErrBadFrame", n, err)
		}
	}
}

func TestPredicateMatch(t *testing.T) {
	page := []byte{0xA4, 0xFF}
	if !(Predicate{Offset: 0, Mask: 0x0F, Value: 0x04}).Match(page) {
		t.Fatal("masked low nibble should match")
	}
	if (Predicate{Offset: 0, Mask: 0xFF, Value: 0x04}).Match(page) {
		t.Fatal("full-byte compare should not match")
	}
	if (Predicate{Offset: 9, Mask: 0xFF, Value: 0}).Match(page) {
		t.Fatal("out-of-range offset must never match")
	}
	if !(Predicate{Offset: 1, Mask: 0, Value: 0x77}).Match(page) {
		t.Fatal("zero mask matches everything")
	}
}

func TestGetResultRoundtrip(t *testing.T) {
	for _, tc := range []struct {
		value      []byte
		del, found bool
	}{
		{[]byte("hello"), false, true},
		{nil, true, true},
		{nil, false, false},
	} {
		v, del, found, err := DecodeGetResult(EncodeGetResult(tc.value, tc.del, tc.found))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(v, tc.value) || del != tc.del || found != tc.found {
			t.Fatalf("roundtrip (%q,%v,%v) = (%q,%v,%v)", tc.value, tc.del, tc.found, v, del, found)
		}
	}
	if _, _, _, err := DecodeGetResult(nil); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("empty get result: err = %v, want ErrBadFrame", err)
	}
}

func TestScanResultRoundtrip(t *testing.T) {
	pages := append(bytes.Repeat([]byte{1}, 8), bytes.Repeat([]byte{2}, 8)...)
	enc := EncodeScanResult(8, []uint32{3, 9}, pages)
	pageSize, idx, got, err := DecodeScanResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	if pageSize != 8 || len(idx) != 2 || idx[0] != 3 || idx[1] != 9 || !bytes.Equal(got, pages) {
		t.Fatalf("roundtrip = (%d, %v, %x)", pageSize, idx, got)
	}
	// Empty result set still carries the page size.
	pageSize, idx, got, err = DecodeScanResult(EncodeScanResult(4096, nil, nil))
	if err != nil || pageSize != 4096 || len(idx) != 0 || len(got) != 0 {
		t.Fatalf("empty roundtrip = (%d, %v, %x), err %v", pageSize, idx, got, err)
	}
}

func TestScanResultRejectsCorruption(t *testing.T) {
	enc := EncodeScanResult(8, []uint32{0}, bytes.Repeat([]byte{7}, 8))
	for _, bad := range [][]byte{
		nil,
		enc[:len(enc)-1],              // truncated page bytes
		append(enc, 0),                // trailing garbage
		enc[:7],                       // truncated header
		EncodeScanResult(0, nil, nil), // zero page size
	} {
		if _, _, _, err := DecodeScanResult(bad); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("%x: err = %v, want ErrBadFrame", bad, err)
		}
	}
}

func TestCompactRequestRoundtrip(t *testing.T) {
	req := CompactRequest{
		Inputs:      []TableRef{{ID: 7, Blocks: 12}, {ID: 900, Blocks: 1}},
		DropDeletes: true,
		BitsPerKey:  10,
	}
	got, err := DecodeCompactRequest(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.DropDeletes != req.DropDeletes || got.BitsPerKey != req.BitsPerKey || len(got.Inputs) != 2 ||
		got.Inputs[0] != req.Inputs[0] || got.Inputs[1] != req.Inputs[1] {
		t.Fatalf("roundtrip = %+v, want %+v", got, req)
	}
}

func TestCompactRequestRejectsCorruption(t *testing.T) {
	enc := (CompactRequest{Inputs: []TableRef{{ID: 1, Blocks: 2}}}).Encode()
	for _, bad := range [][]byte{nil, enc[:6], enc[:len(enc)-1], append(enc, 0)} {
		if _, err := DecodeCompactRequest(bad); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("%x: err = %v, want ErrBadFrame", bad, err)
		}
	}
}

func TestCompactResultRoundtrip(t *testing.T) {
	metas := [][]byte{[]byte("meta-one"), {}, []byte("m3")}
	got, err := DecodeCompactResult(EncodeCompactResult(metas))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || !bytes.Equal(got[0], metas[0]) || len(got[1]) != 0 || !bytes.Equal(got[2], metas[2]) {
		t.Fatalf("roundtrip = %q", got)
	}
}

func TestCompactResultRejectsCorruption(t *testing.T) {
	enc := EncodeCompactResult([][]byte{[]byte("abc")})
	for _, bad := range [][]byte{nil, enc[:3], enc[:len(enc)-1], append(enc, 0)} {
		if _, err := DecodeCompactResult(bad); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("%x: err = %v, want ErrBadFrame", bad, err)
		}
	}
}

func TestEngineLanesSerializePerGroup(t *testing.T) {
	e := NewEngine(2, Config{SetupCPU: vclock.Microsecond, ScanMBps: 1, MergeMBps: 1})
	// Two gets on group 0 serialize on its lane; a get on group 1 at
	// the same instant does not wait.
	e1 := e.GetCost(0, 0, 1)
	e2 := e.GetCost(0, 0, 1)
	o1 := e.GetCost(0, 1, 1)
	if e2 <= e1 {
		t.Fatalf("same-group gets must serialize: %v then %v", e1, e2)
	}
	if o1 != e1 {
		t.Fatalf("disjoint-group get should not queue: %v, want %v", o1, e1)
	}
	// Out-of-range groups fall back to the shared unit.
	s1 := e.GetCost(0, 99, 1)
	s2 := e.ScanCost(0, 1)
	if s2 <= s1 {
		t.Fatalf("shared unit must serialize: %v then %v", s1, s2)
	}
}

func TestEngineStats(t *testing.T) {
	e := NewEngine(1, Config{})
	e.NoteGet(true, 65, 98304)
	e.NoteGet(false, 1, 98304)
	e.NoteScan(64, 3, 100, 262144)
	e.NoteCompact(24, 500, 2*98304)
	st := e.Stats()
	if st.Gets != 2 || st.GetHits != 1 || st.Scans != 1 || st.PagesScanned != 64 ||
		st.PagesMatched != 3 || st.Compactions != 1 || st.BlocksMerged != 24 {
		t.Fatalf("stats = %+v", st)
	}
	wantOut := int64(65 + 1 + 100 + 500)
	wantDirect := int64(98304 + 98304 + 262144 + 2*98304)
	if st.BytesOut != wantOut || st.BytesDirect != wantDirect || st.BytesSaved() != wantDirect-wantOut {
		t.Fatalf("byte accounting = %+v", st)
	}
}
