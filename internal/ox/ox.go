// Package ox models the OX controller framework of §4.1: a programmable
// storage controller (the paper's DFC card, an ARMv8 SoC) organized in
// three layers — media management at the bottom, an FTL in the middle
// and a host interface on top.
//
// The package provides (i) the Media interface, the common representation
// of the physical address space that FTLs program against (the bottom
// layer), (ii) the Controller, which accounts controller CPU time, memory-
// bus copy bandwidth and host-link transfers in virtual time (the top
// layer and the resource model behind Figure 7), and (iii) shared plumbing
// for synchronous controller I/O versus asynchronous user I/O.
//
// Figure 7 of the paper shows the controller saturating with two host
// threads because it "cannot keep up with the data copies within OX:
// from the network stack to the FTL, and from the FTL to the Open-Channel
// SSD". Those two copies cross the controller's memory bus, which is the
// single contended resource here; CopyRX and CopyToDevice reserve it.
package ox

import (
	"errors"

	"repro/internal/metrics"
	"repro/internal/ocssd"
	"repro/internal/vclock"
)

// Media is the media-manager abstraction (bottom OX layer): the physical
// address space common to all FTLs. *ocssd.Device implements it; tests
// may substitute fakes.
type Media interface {
	Geometry() ocssd.Geometry
	VectorWrite(now vclock.Time, ppas []ocssd.PPA, data []byte) (vclock.Time, error)
	VectorRead(now vclock.Time, ppas []ocssd.PPA, dst []byte) (vclock.Time, error)
	Append(now vclock.Time, id ocssd.ChunkID, data []byte) (int, vclock.Time, error)
	Pad(now vclock.Time, id ocssd.ChunkID) (vclock.Time, error)
	Reset(now vclock.Time, id ocssd.ChunkID) (vclock.Time, error)
	Copy(now vclock.Time, src []ocssd.PPA, dst ocssd.ChunkID) (int, vclock.Time, error)
	Chunk(id ocssd.ChunkID) (ocssd.ChunkInfo, error)
	Report() []ocssd.ChunkInfo
}

// Statically assert that the simulated device is a Media.
var _ Media = (*ocssd.Device)(nil)

// Config sizes the controller resource model.
type Config struct {
	// Cores is the number of general-purpose cores (per-command CPU work).
	Cores int
	// MemMBps is the memory-bus copy bandwidth in MB/s. Both OX copies
	// (network→FTL and FTL→device) cross this single bus; it is the
	// bottleneck Figure 7 demonstrates.
	MemMBps float64
	// HostMBps is the host link bandwidth (PCIe or 40GE on the DFC).
	HostMBps float64
	// HostLatency is the fixed per-transfer host link latency.
	HostLatency vclock.Duration
	// ZeroCopyRX elides the network→FTL copy (§4.4: "Avoiding data
	// copies requires support from the operating system (e.g., AF_XDP
	// zero-copy sockets) or hardware acceleration").
	ZeroCopyRX bool
}

// DefaultConfig returns a DFC-like controller: 4 ARMv8 cores, a memory
// bus that copies at 1.2 GB/s, and a 40GE host link.
func DefaultConfig() Config {
	return Config{
		Cores:       4,
		MemMBps:     1200,
		HostMBps:    5000,
		HostLatency: 10 * vclock.Microsecond,
	}
}

// Stats aggregates controller accounting.
type Stats struct {
	BytesRX       int64 // bytes copied network→FTL
	BytesToDevice int64 // bytes copied FTL→device
	BytesHost     int64 // bytes moved over the host link
	HostTransfers int64
	UserIOs       int64
	ControllerIOs int64
}

// Controller is the OX runtime: resource accounting plus the media layer.
type Controller struct {
	cfg     Config
	cores   *vclock.Pool
	memBus  *vclock.Resource
	hostBus *vclock.Resource
	media   Media

	bytesRX       metrics.Counter
	bytesToDevice metrics.Counter
	bytesHost     metrics.Counter
	hostTransfers metrics.Counter
	userIOs       metrics.Counter
	controllerIOs metrics.Counter
}

// NewController wires a controller over the given media.
func NewController(cfg Config, media Media) (*Controller, error) {
	if media == nil {
		return nil, errors.New("ox: nil media")
	}
	if cfg.Cores <= 0 {
		return nil, errors.New("ox: controller needs at least one core")
	}
	if cfg.MemMBps <= 0 || cfg.HostMBps <= 0 {
		return nil, errors.New("ox: bandwidths must be positive")
	}
	return &Controller{
		cfg:     cfg,
		cores:   vclock.NewPool("core", cfg.Cores),
		memBus:  vclock.NewResource("membus"),
		hostBus: vclock.NewResource("hostlink"),
		media:   media,
	}, nil
}

// Media exposes the bottom layer to FTLs.
func (c *Controller) Media() Media { return c.media }

// Config reports the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// HostTransfer moves n bytes over the host link, returning the virtual
// completion instant. It models the PCIe/40GE hop of a user I/O.
func (c *Controller) HostTransfer(now vclock.Time, n int64) vclock.Time {
	_, end := c.hostBus.Acquire(now, c.cfg.HostLatency+vclock.DurationFor(n, c.cfg.HostMBps))
	c.bytesHost.Add(n)
	c.hostTransfers.Inc()
	return end
}

// CopyRX performs the network-stack→FTL copy on the controller memory
// bus. With ZeroCopyRX configured it costs nothing (§4.4).
func (c *Controller) CopyRX(now vclock.Time, n int64) vclock.Time {
	if c.cfg.ZeroCopyRX {
		return now
	}
	_, end := c.memBus.Acquire(now, vclock.DurationFor(n, c.cfg.MemMBps))
	c.bytesRX.Add(n)
	return end
}

// CopyToDevice performs the FTL→device copy on the controller memory bus.
func (c *Controller) CopyToDevice(now vclock.Time, n int64) vclock.Time {
	_, end := c.memBus.Acquire(now, vclock.DurationFor(n, c.cfg.MemMBps))
	c.bytesToDevice.Add(n)
	return end
}

// CPUWork reserves one core for d of computation (mapping lookups, log
// record handling, checkpoint serialization, ...).
func (c *Controller) CPUWork(now vclock.Time, d vclock.Duration) vclock.Time {
	_, end := c.cores.Acquire(now, d)
	return end
}

// NoteUserIO counts an asynchronous user I/O (dashed lines in Figure 2).
func (c *Controller) NoteUserIO() { c.userIOs.Inc() }

// NoteControllerIO counts a synchronous controller I/O (solid lines in
// Figure 2: GC, recovery log, checkpoint, mapping persistence).
func (c *Controller) NoteControllerIO() { c.controllerIOs.Inc() }

// Utilization reports the memory-bus utilization over [0, now] — the
// quantity Figure 7 plots (the controller saturates on data copies).
func (c *Controller) Utilization(now vclock.Time) float64 {
	return c.memBus.Utilization(now)
}

// CoreUtilization reports the aggregate core-pool utilization.
func (c *Controller) CoreUtilization(now vclock.Time) float64 {
	return c.cores.Utilization(now)
}

// Stats returns a snapshot of the controller counters.
func (c *Controller) Stats() Stats {
	return Stats{
		BytesRX:       c.bytesRX.Value(),
		BytesToDevice: c.bytesToDevice.Value(),
		BytesHost:     c.bytesHost.Value(),
		HostTransfers: c.hostTransfers.Value(),
		UserIOs:       c.userIOs.Value(),
		ControllerIOs: c.controllerIOs.Value(),
	}
}

// ResetAccounting clears the resource timelines and counters, keeping
// the media untouched (used between experiment phases).
func (c *Controller) ResetAccounting() {
	c.cores.Reset()
	c.memBus.Reset()
	c.hostBus.Reset()
	c.bytesRX.Reset()
	c.bytesToDevice.Reset()
	c.bytesHost.Reset()
	c.hostTransfers.Reset()
	c.userIOs.Reset()
	c.controllerIOs.Reset()
}
