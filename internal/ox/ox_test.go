package ox

import (
	"testing"

	"repro/internal/nand"
	"repro/internal/ocssd"
	"repro/internal/vclock"
)

func testMedia(t *testing.T) Media {
	t.Helper()
	chip := nand.Geometry{
		Planes: 2, BlocksPerPlane: 8, PagesPerBlock: 12,
		SectorsPerPage: 4, SectorSize: 4096, Cell: nand.TLC,
	}
	geo := ocssd.Finish(ocssd.Geometry{
		Groups: 2, PUsPerGroup: 2, ChunksPerPU: 8, Chip: chip,
		ChannelMBps: 800, CacheMBps: 3200, CacheMB: 4, MaxOpenPerPU: 4,
	})
	d, err := ocssd.New(geo, ocssd.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewControllerValidation(t *testing.T) {
	m := testMedia(t)
	if _, err := NewController(DefaultConfig(), nil); err == nil {
		t.Fatal("nil media should be rejected")
	}
	cfg := DefaultConfig()
	cfg.Cores = 0
	if _, err := NewController(cfg, m); err == nil {
		t.Fatal("zero cores should be rejected")
	}
	cfg = DefaultConfig()
	cfg.MemMBps = 0
	if _, err := NewController(cfg, m); err == nil {
		t.Fatal("zero bus bandwidth should be rejected")
	}
	c, err := NewController(DefaultConfig(), m)
	if err != nil {
		t.Fatal(err)
	}
	if c.Media() != m {
		t.Fatal("Media accessor wrong")
	}
	if c.Config().Cores != 4 {
		t.Fatal("Config accessor wrong")
	}
}

func TestHostTransferTiming(t *testing.T) {
	c, _ := NewController(Config{Cores: 1, MemMBps: 1000, HostMBps: 1000, HostLatency: 0}, testMedia(t))
	// 1 MB at 1000 MB/s = 1 ms.
	end := c.HostTransfer(0, 1<<20)
	want := vclock.DurationFor(1<<20, 1000)
	if end != vclock.Time(want) {
		t.Fatalf("end = %v, want %v", end, want)
	}
	if c.Stats().BytesHost != 1<<20 || c.Stats().HostTransfers != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
	// The host bus serializes transfers.
	end2 := c.HostTransfer(0, 1<<20)
	if end2 != vclock.Time(2*want) {
		t.Fatalf("second transfer end = %v, want %v", end2, 2*want)
	}
}

func TestCopiesShareTheMemoryBus(t *testing.T) {
	c, _ := NewController(Config{Cores: 4, MemMBps: 1000, HostMBps: 5000}, testMedia(t))
	d := vclock.DurationFor(1<<20, 1000)
	e1 := c.CopyRX(0, 1<<20)
	e2 := c.CopyToDevice(0, 1<<20)
	// Both copies contend on one bus: the second ends at 2d even though
	// four cores are idle.
	if e1 != vclock.Time(d) || e2 != vclock.Time(2*d) {
		t.Fatalf("ends = %v, %v; want %v, %v", e1, e2, d, 2*d)
	}
	s := c.Stats()
	if s.BytesRX != 1<<20 || s.BytesToDevice != 1<<20 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestZeroCopyRXElidesCopy(t *testing.T) {
	cfg := Config{Cores: 1, MemMBps: 1000, HostMBps: 5000, ZeroCopyRX: true}
	c, _ := NewController(cfg, testMedia(t))
	if end := c.CopyRX(42, 1<<20); end != 42 {
		t.Fatalf("zero-copy RX should be free, end = %v", end)
	}
	if c.Stats().BytesRX != 0 {
		t.Fatal("zero-copy RX should not count bytes")
	}
	if c.Utilization(vclock.Time(vclock.Second)) != 0 {
		t.Fatal("bus should be idle")
	}
}

func TestCPUWorkUsesCorePool(t *testing.T) {
	c, _ := NewController(Config{Cores: 2, MemMBps: 1000, HostMBps: 5000}, testMedia(t))
	e1 := c.CPUWork(0, 100)
	e2 := c.CPUWork(0, 100)
	e3 := c.CPUWork(0, 100)
	if e1 != 100 || e2 != 100 {
		t.Fatalf("two cores should run in parallel: %v, %v", e1, e2)
	}
	if e3 != 200 {
		t.Fatalf("third task should queue: %v", e3)
	}
	if u := c.CoreUtilization(100); u != 1.0 {
		t.Fatalf("core utilization = %v, want 1.0", u)
	}
}

func TestUtilizationSaturates(t *testing.T) {
	c, _ := NewController(Config{Cores: 1, MemMBps: 1000, HostMBps: 5000}, testMedia(t))
	// Offer 2 seconds of copy work in a 1-second window.
	c.CopyToDevice(0, 2000<<20) // 2000 MB at 1000 MB/s = 2 s
	if u := c.Utilization(vclock.Time(vclock.Second)); u != 1.0 {
		t.Fatalf("utilization = %v, want saturated", u)
	}
}

func TestIOAccountingAndReset(t *testing.T) {
	c, _ := NewController(DefaultConfig(), testMedia(t))
	c.NoteUserIO()
	c.NoteUserIO()
	c.NoteControllerIO()
	s := c.Stats()
	if s.UserIOs != 2 || s.ControllerIOs != 1 {
		t.Fatalf("stats = %+v", s)
	}
	c.CopyRX(0, 100)
	c.ResetAccounting()
	s = c.Stats()
	if s.UserIOs != 0 || s.BytesRX != 0 {
		t.Fatalf("reset left stats = %+v", s)
	}
	if c.Utilization(vclock.Time(vclock.Second)) != 0 {
		t.Fatal("reset left bus busy")
	}
}

func TestMediaPassThrough(t *testing.T) {
	// The controller's media is the real device: a write through the
	// media layer must round-trip.
	m := testMedia(t)
	c, _ := NewController(DefaultConfig(), m)
	geo := c.Media().Geometry()
	id := ocssd.ChunkID{Group: 0, PU: 0, Chunk: 0}
	data := make([]byte, geo.WSMin*geo.Chip.SectorSize)
	for i := range data {
		data[i] = 0x3C
	}
	start, end, err := c.Media().Append(0, id, data)
	if err != nil || start != 0 {
		t.Fatalf("append: start=%d err=%v", start, err)
	}
	got := make([]byte, len(data))
	ppas := make([]ocssd.PPA, geo.WSMin)
	for i := range ppas {
		ppas[i] = id.PPAOf(i)
	}
	if _, err := c.Media().VectorRead(end, ppas, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x3C {
		t.Fatal("media round-trip failed")
	}
}
