// Package oxblock implements OX-Block, the paper's generic FTL (§4.2):
// it "exposes Open-Channel SSDs as block devices", assumes 4 KB as the
// minimum read granularity and "maintains a 4KB-granularity page-level
// mapping table". Every write operation of up to 1 MB is a transaction
// (§4.3): atomicity and durability come from write-ahead logging plus
// checkpoints, exactly the machinery whose recovery cost Figure 3
// measures. Garbage collection marks one group at a time so that
// collection interference stays local (§4.3).
//
// Durability model: commit records are forced to the log with explicit
// stripe padding, so they survive any crash. Transaction *data* is
// acknowledged from the controller's write-back cache (§4.3: "writes
// complete as soon as they hit the storage controller cache") and
// sub-stripe tails live in controller DRAM until a wordline stripe
// fills; OX-Block therefore requires a power-loss-protected device
// (ocssd.Options.PowerLossProtected), as the DFC platform provided.
// Running it on a non-PLP device trades crash safety of the most recent
// sub-stripe writes, exactly the atomicity-fallacy trap §5 warns about.
package oxblock

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/ftl/ftlcore"
	"repro/internal/ocssd"
	"repro/internal/offload"
	"repro/internal/ox"
	"repro/internal/vclock"
)

// MaxTxPages bounds one transactional write: 256 × 4 KB = 1 MB, the
// paper's "random writes of up to 1 MB in size; each of these writes is
// a transaction".
const MaxTxPages = 256

// Errors returned by the block device.
var (
	ErrRange      = errors.New("oxblock: logical page out of range")
	ErrTxTooLarge = errors.New("oxblock: transaction exceeds 1 MB")
	ErrPageSize   = errors.New("oxblock: payload must be whole 4 KB pages")
	ErrSector     = errors.New("oxblock: device sector size must be 4 KB")
)

// Config sizes and tunes an OX-Block instance.
type Config struct {
	// LogicalPages is the exposed capacity in 4 KB pages. It must leave
	// physical headroom (overprovisioning) for GC and the log.
	LogicalPages int64
	// StripeWidth is the number of concurrently open data chunks
	// (0 = one per parallel unit: full horizontal striping).
	StripeWidth int
	// CheckpointInterval is the Ci of Figure 3; zero disables
	// checkpointing entirely (the blue line of the figure).
	CheckpointInterval vclock.Duration
	// CPUPerMapUpdate is controller CPU per mapping-table operation.
	CPUPerMapUpdate vclock.Duration
	// CPUPerRecordReplay is the per-record recovery cost (Figure 3's
	// slope). Zero selects the ftlcore default.
	CPUPerRecordReplay vclock.Duration
	// GCFreeThreshold/GCTargetFree control the collector; zero values
	// select ~8%/12% of the device's chunks.
	GCFreeThreshold int
	GCTargetFree    int
	// GlobalGC disables group marking (ablation for the §4.3 locality).
	GlobalGC bool
}

func (c *Config) fill(geo ocssd.Geometry) error {
	if geo.Chip.SectorSize != 4096 {
		return ErrSector
	}
	totalChunks := geo.TotalPUs() * geo.ChunksPerPU
	if c.StripeWidth <= 0 {
		c.StripeWidth = geo.TotalPUs()
	}
	if c.CPUPerMapUpdate <= 0 {
		c.CPUPerMapUpdate = vclock.Microsecond
	}
	if c.GCFreeThreshold <= 0 {
		c.GCFreeThreshold = totalChunks / 12
		if c.GCFreeThreshold < 2 {
			c.GCFreeThreshold = 2
		}
	}
	if c.GCTargetFree <= 0 {
		c.GCTargetFree = totalChunks / 8
		if c.GCTargetFree < c.GCFreeThreshold {
			c.GCTargetFree = c.GCFreeThreshold + 1
		}
	}
	if c.LogicalPages <= 0 {
		// Default: 70% of physical capacity.
		c.LogicalPages = int64(totalChunks) * int64(geo.SectorsPerChunk()) * 7 / 10
	}
	phys := int64(totalChunks) * int64(geo.SectorsPerChunk())
	if c.LogicalPages > phys*9/10 {
		return fmt.Errorf("oxblock: %d logical pages leave no overprovisioning (physical %d)",
			c.LogicalPages, phys)
	}
	return nil
}

// Stats aggregates block-device activity.
type Stats struct {
	Txns         int64
	PagesWritten int64
	PagesRead    int64
	Checkpoints  int64
	Recoveries   int64
}

// RecoveryReport describes one recovery run (the quantity of Figure 3).
type RecoveryReport struct {
	CheckpointFound  bool
	ReplayedRecords  int
	ReplayedSegments int
	Duration         vclock.Duration
}

// Device is an OX-Block block device over an Open-Channel SSD.
type Device struct {
	ctrl  *ox.Controller
	media ox.Media
	geo   ocssd.Geometry
	cfg   Config

	mu     sync.Mutex
	pmap   *ftlcore.PageMap
	val    *ftlcore.Validity
	rmap   *ftlcore.ReverseMap
	alloc  *ftlcore.Allocator
	wal    *ftlcore.WAL
	ckpt   *ftlcore.Checkpointer
	gc     *ftlcore.GC
	writer *ftlcore.StripeWriter

	epoch    uint64
	lastCkpt vclock.Time
	nextTx   uint64
	gcMoves  []byte      // pending RecGCMove payload for the victim in flight
	gcEnd    vclock.Time // virtual completion of the background collector
	stats    Stats
	offl     *offload.Engine
}

// ckptSlots picks the reserved checkpoint chunks deterministically: slot
// 0 lives on group 0, slot 1 on the last group, walking PUs then chunk
// indexes.
func ckptSlots(geo ocssd.Geometry, mapPages int) [2][]ocssd.ChunkID {
	need := ftlcore.SlotBytesNeeded(mapPages)
	perChunk := int(geo.ChunkBytes())
	chunks := (need + perChunk - 1) / perChunk
	var slots [2][]ocssd.ChunkID
	for s := 0; s < 2; s++ {
		g := 0
		if s == 1 {
			g = geo.Groups - 1
		}
		for i := 0; i < chunks; i++ {
			slots[s] = append(slots[s], ocssd.ChunkID{
				Group: g,
				PU:    i % geo.PUsPerGroup,
				Chunk: i / geo.PUsPerGroup * 2 % geo.ChunksPerPU,
			})
		}
	}
	// With one group, keep the two slots on disjoint chunk indexes.
	if geo.Groups == 1 {
		for i := range slots[1] {
			slots[1][i].Chunk = slots[1][i].Chunk + 1
		}
	}
	return slots
}

// New opens an OX-Block device on the controller's media. On first use
// it formats; when the media holds a checkpoint or log (e.g. after a
// crash), it recovers. The returned report is nil for a fresh format.
func New(ctrl *ox.Controller, cfg Config, now vclock.Time) (*Device, *RecoveryReport, vclock.Time, error) {
	geo := ctrl.Media().Geometry()
	if err := cfg.fill(geo); err != nil {
		return nil, nil, now, err
	}
	d := &Device{
		ctrl:  ctrl,
		media: ctrl.Media(),
		geo:   geo,
		cfg:   cfg,
		pmap:  ftlcore.NewPageMap(int(cfg.LogicalPages)),
		val:   ftlcore.NewValidity(geo),
		rmap:  ftlcore.NewReverseMap(geo),
		offl:  offload.NewEngine(geo.Groups, offload.DefaultConfig()),
	}
	slots := ckptSlots(geo, d.pmap.Pages())
	reserved := make(map[ocssd.ChunkID]bool)
	for _, s := range slots {
		for _, id := range s {
			reserved[id] = true
		}
	}
	var err error
	d.ckpt, err = ftlcore.NewCheckpointer(d.media, ctrl, slots, ftlcore.CheckpointConfig{})
	if err != nil {
		return nil, nil, now, err
	}

	// Recovery: load the newest checkpoint, scan for log segments,
	// replay, then survey the chunks.
	report := &RecoveryReport{}
	start := now
	ckptEpoch, ckptLSN, end, err := d.ckpt.Load(now, d.pmap)
	switch {
	case errors.Is(err, ftlcore.ErrNoCheckpoint):
		ckptEpoch, ckptLSN = 0, 0
	case err != nil:
		return nil, nil, end, err
	default:
		report.CheckpointFound = true
	}
	segs, maxEpoch, end, err := ftlcore.ScanLog(end, d.media, ctrl)
	if err != nil {
		return nil, nil, end, err
	}
	report.ReplayedSegments = len(segs)
	walCfg := ftlcore.WALConfig{
		Target:             ftlcore.AnyTarget(),
		CPUPerRecordReplay: cfg.CPUPerRecordReplay,
	}
	n, end, err := ftlcore.ReplayLog(end, d.media, ctrl, walCfg, segs, ckptEpoch, ckptLSN, d.applyRecord)
	if err != nil {
		return nil, nil, end, err
	}
	report.ReplayedRecords = n
	fresh := !report.CheckpointFound && len(segs) == 0

	// Rebuild validity and the reverse map from the mapping table.
	var rebuildCPU vclock.Duration
	for lpn := int64(0); lpn < cfg.LogicalPages; lpn++ {
		if ppa, ok := d.pmap.Lookup(lpn); ok {
			d.val.MarkValid(ppa)
			d.rmap.Set(ppa, lpn)
			rebuildCPU += 200 // 200ns per mapped entry
		}
	}
	end = ctrl.CPUWork(end, rebuildCPU)

	// Survey chunks: pool free ones, classify the rest.
	d.alloc = ftlcore.NewAllocator(d.media, reserved)
	d.gc = ftlcore.NewGC(d.media, ctrl, d.alloc, d.val, d.rmap, ftlcore.GCConfig{
		FreeThreshold: cfg.GCFreeThreshold,
		TargetFree:    cfg.GCTargetFree,
		GlobalVictims: cfg.GlobalGC,
	})
	d.gc.BeforeReset = d.persistGCMoves
	logChunks := make(map[ocssd.ChunkID]bool, len(segs))
	for _, s := range segs {
		logChunks[s.Chunk] = true
	}
	var oldLog []ocssd.ChunkID
	for _, ci := range d.media.Report() {
		if reserved[ci.ID] || ci.State == ocssd.ChunkOffline || ci.State == ocssd.ChunkFree {
			continue
		}
		if logChunks[ci.ID] {
			oldLog = append(oldLog, ci.ID)
			continue
		}
		// A written, non-log, non-checkpoint chunk holds data.
		if d.val.ValidCount(ci.ID) > 0 {
			d.gc.AddCandidate(ci.ID)
		} else if e, err := d.alloc.Release(end, ci.ID); err == nil {
			end = e
		}
	}

	// Fresh WAL in a new epoch, then persist a recovery checkpoint and
	// recycle the old log.
	d.epoch = maxEpoch + 1
	walCfg.Epoch = d.epoch
	d.wal, err = ftlcore.NewWAL(d.media, ctrl, d.alloc, walCfg)
	if err != nil {
		return nil, nil, end, err
	}
	if !fresh {
		if end, err = d.ckpt.Write(end, d.pmap, d.epoch, d.wal.NextLSN()); err != nil {
			return nil, nil, end, err
		}
		d.stats.Checkpoints++
		d.stats.Recoveries++
	}
	for _, id := range oldLog {
		if e, err := d.alloc.Release(end, id); err == nil {
			end = e
		}
	}
	d.writer, err = ftlcore.NewStripeWriter(d.media, d.alloc, ftlcore.AnyTarget(), cfg.StripeWidth)
	if err != nil {
		return nil, nil, end, err
	}
	d.lastCkpt = end
	report.Duration = end.Sub(start)
	if fresh {
		return d, nil, end, nil
	}
	return d, report, end, nil
}

// applyRecord is the replay function: it re-applies mapping updates.
func (d *Device) applyRecord(r ftlcore.Record) error {
	switch r.Type {
	case ftlcore.RecTxCommit, ftlcore.RecGCMove:
		if len(r.Payload)%16 != 0 {
			return fmt.Errorf("oxblock: malformed commit payload (%d bytes)", len(r.Payload))
		}
		for off := 0; off < len(r.Payload); off += 16 {
			lpn := int64(binary.LittleEndian.Uint64(r.Payload[off:]))
			ppa := ocssd.Unpack(binary.LittleEndian.Uint64(r.Payload[off+8:]))
			if _, _, err := d.pmap.Update(lpn, ppa); err != nil {
				return err
			}
		}
	case ftlcore.RecTrim:
		if len(r.Payload)%8 != 0 {
			return fmt.Errorf("oxblock: malformed trim payload")
		}
		for off := 0; off < len(r.Payload); off += 8 {
			lpn := int64(binary.LittleEndian.Uint64(r.Payload[off:]))
			if _, _, err := d.pmap.Unmap(lpn); err != nil {
				return err
			}
		}
	}
	return nil
}

// Geometry reports the underlying device geometry.
func (d *Device) Geometry() ocssd.Geometry { return d.geo }

// Controller reports the OX controller the device accounts against —
// the execution domain of every OX-Block command. All commands share
// the device-wide transaction lock, the WAL and the controller's core
// pool and memory bus, so the host interface must never overlap two
// commands of the same controller domain.
func (d *Device) Controller() *ox.Controller { return d.ctrl }

// LogicalPages reports the exposed capacity in 4 KB pages.
func (d *Device) LogicalPages() int64 { return d.cfg.LogicalPages }

// Stats returns a snapshot of device statistics.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// GCStats exposes the collector's counters.
func (d *Device) GCStats() ftlcore.GCStats { return d.gc.Stats() }

// WALRecords reports records appended in this incarnation.
func (d *Device) WALRecords() int64 { return d.wal.Records() }

// checkRange validates a page extent.
func (d *Device) checkRange(lpn int64, pages int) error {
	if lpn < 0 || pages <= 0 || lpn+int64(pages) > d.cfg.LogicalPages {
		return fmt.Errorf("%w: [%d,+%d) of %d", ErrRange, lpn, pages, d.cfg.LogicalPages)
	}
	return nil
}

// Write stores len(data)/4K pages at lpn as one transaction: data is
// placed on flash, the mapping is updated, and a commit record is forced
// to the recovery log before the call returns (§4.3: "the FTL must
// ensure atomicity and durability"). The transaction is atomic across a
// crash: either every page maps to the new data or none does.
func (d *Device) Write(now vclock.Time, lpn int64, data []byte) (vclock.Time, error) {
	secSize := d.geo.Chip.SectorSize
	if len(data) == 0 || len(data)%secSize != 0 {
		return now, ErrPageSize
	}
	pages := len(data) / secSize
	if pages > MaxTxPages {
		return now, ErrTxTooLarge
	}
	if err := d.checkRange(lpn, pages); err != nil {
		return now, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ctrl.NoteUserIO()

	// Data path: stripe the payload across open chunks. The stripe
	// writer needs ws_min multiples; pad the tail sectors with zeros and
	// map only the real pages.
	padded := data
	if rem := pages % d.geo.WSMin; rem != 0 {
		padded = make([]byte, (pages+d.geo.WSMin-rem)*secSize)
		copy(padded, data)
	}
	ppas, end, err := d.writer.Append(now, padded)
	if err != nil {
		return now, err
	}
	d.noteAppIOs(ppas, now)

	// Mapping updates + commit record payload.
	payload := make([]byte, pages*16)
	for i := 0; i < pages; i++ {
		old, had, err := d.pmap.Update(lpn+int64(i), ppas[i])
		if err != nil {
			return end, err
		}
		if had {
			d.val.MarkInvalid(old)
		}
		d.val.MarkValid(ppas[i])
		d.rmap.Set(ppas[i], lpn+int64(i))
		binary.LittleEndian.PutUint64(payload[i*16:], uint64(lpn+int64(i)))
		binary.LittleEndian.PutUint64(payload[i*16+8:], ppas[i].Pack())
	}
	end = d.ctrl.CPUWork(end, vclock.Duration(pages)*d.cfg.CPUPerMapUpdate)

	// Commit point: the WAL record is forced before acknowledging.
	d.nextTx++
	_, end, err = d.wal.Append(end, ftlcore.Record{
		Type:    ftlcore.RecTxCommit,
		TxID:    d.nextTx,
		Payload: payload,
	}, true)
	if err != nil {
		return end, err
	}
	d.stats.Txns++
	d.stats.PagesWritten += int64(pages)

	// Register filled data chunks with the collector.
	d.registerClosedChunks(ppas)

	// Background duties. The checkpoint is a synchronous controller I/O
	// (it blocks the triggering writer); collection runs in the
	// background — §4.3's "background threads" — so the caller does not
	// wait for it, but its media traffic interferes through the shared
	// channel and chip resources.
	if end, err = d.maybeCheckpoint(end); err != nil {
		return end, err
	}
	if d.gc.Needed() {
		// Collection starts at the triggering writer's clock; the writer
		// does not wait for it (background threads), but its media
		// reservations contend with concurrent application I/O.
		gcEnd, err := d.gc.Collect(end, d.remapForGC)
		if err != nil {
			return end, err
		}
		d.gcEnd = gcEnd
	}
	return end, nil
}

// Read returns pages*4K bytes starting at lpn. Unmapped pages read as
// zeros (block-device semantics for trimmed space).
func (d *Device) Read(now vclock.Time, lpn int64, pages int) ([]byte, vclock.Time, error) {
	if err := d.checkRange(lpn, pages); err != nil {
		return nil, now, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ctrl.NoteUserIO()
	return d.readLocked(now, lpn, pages)
}

// readLocked is the shared read path of Read and OffloadScan: mapping
// lookups, map CPU, one vector read of the mapped pages, zero-fill for
// unmapped ones. Caller holds mu.
func (d *Device) readLocked(now vclock.Time, lpn int64, pages int) ([]byte, vclock.Time, error) {
	secSize := d.geo.Chip.SectorSize
	out := make([]byte, pages*secSize)

	var ppas []ocssd.PPA
	var dsts []int
	for i := 0; i < pages; i++ {
		if ppa, ok := d.pmap.Lookup(lpn + int64(i)); ok {
			ppas = append(ppas, ppa)
			dsts = append(dsts, i)
		}
	}
	end := d.ctrl.CPUWork(now, vclock.Duration(pages)*d.cfg.CPUPerMapUpdate)
	if len(ppas) > 0 {
		d.noteAppIOs(ppas, now)
		buf := make([]byte, len(ppas)*secSize)
		var err error
		end, err = d.media.VectorRead(end, ppas, buf)
		if err != nil {
			return nil, end, err
		}
		for j, i := range dsts {
			copy(out[i*secSize:(i+1)*secSize], buf[j*secSize:(j+1)*secSize])
		}
	}
	d.stats.PagesRead += int64(pages)
	return out, end, nil
}

// Offload returns the device's in-device compute engine (stats and
// cost model of the offloaded commands).
func (d *Device) Offload() *offload.Engine { return d.offl }

// OffloadScan runs a predicate-filtered range scan inside the device
// (OpOffloadScan): the extent is read into device RAM with the exact
// Read machinery (same mapping CPU, same media reservations), the
// offload engine's compute unit filters it at ScanMBps, and only the
// matching pages — framed by offload.EncodeScanResult — are returned
// for the host link. The host-side alternative reads the whole extent
// over the link and filters on the host; selectivity decides the
// winner. Media faults surface as the injector's typed errors so
// hostif.StatusOf classifies them like plain reads.
func (d *Device) OffloadScan(now vclock.Time, lpn int64, pages int, pred offload.Predicate) ([]byte, vclock.Time, error) {
	if err := d.checkRange(lpn, pages); err != nil {
		return nil, now, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ctrl.NoteUserIO()
	raw, end, err := d.readLocked(now, lpn, pages)
	if err != nil {
		return nil, end, fmt.Errorf("oxblock: offload scan: %w", err)
	}
	secSize := d.geo.Chip.SectorSize
	end = d.offl.ScanCost(end, int64(len(raw)))
	var idx []uint32
	var match []byte
	for i := 0; i < pages; i++ {
		page := raw[i*secSize : (i+1)*secSize]
		if pred.Match(page) {
			idx = append(idx, uint32(i))
			match = append(match, page...)
		}
	}
	res := offload.EncodeScanResult(secSize, idx, match)
	d.offl.NoteScan(pages, len(idx), int64(len(res)), int64(len(raw)))
	return res, end, nil
}

// Trim unmaps a page extent as one logged transaction.
func (d *Device) Trim(now vclock.Time, lpn int64, pages int) (vclock.Time, error) {
	if err := d.checkRange(lpn, pages); err != nil {
		return now, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ctrl.NoteUserIO()
	payload := make([]byte, pages*8)
	for i := 0; i < pages; i++ {
		old, had, err := d.pmap.Unmap(lpn + int64(i))
		if err != nil {
			return now, err
		}
		if had {
			d.val.MarkInvalid(old)
		}
		binary.LittleEndian.PutUint64(payload[i*8:], uint64(lpn+int64(i)))
	}
	end := d.ctrl.CPUWork(now, vclock.Duration(pages)*d.cfg.CPUPerMapUpdate)
	d.nextTx++
	_, end, err := d.wal.Append(end, ftlcore.Record{
		Type:    ftlcore.RecTrim,
		TxID:    d.nextTx,
		Payload: payload,
	}, true)
	return end, err
}

// Checkpoint forces a checkpoint now (normally driven by the interval).
func (d *Device) Checkpoint(now vclock.Time) (vclock.Time, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.checkpointLocked(now)
}

func (d *Device) checkpointLocked(now vclock.Time) (vclock.Time, error) {
	lsn := d.wal.NextLSN()
	end, err := d.ckpt.Write(now, d.pmap, d.epoch, lsn)
	if err != nil {
		return end, err
	}
	if end, err = d.wal.Truncate(end, lsn); err != nil {
		return end, err
	}
	d.lastCkpt = end
	d.stats.Checkpoints++
	return end, nil
}

func (d *Device) maybeCheckpoint(now vclock.Time) (vclock.Time, error) {
	if d.cfg.CheckpointInterval <= 0 {
		return now, nil
	}
	if now.Sub(d.lastCkpt) < d.cfg.CheckpointInterval {
		return now, nil
	}
	return d.checkpointLocked(now)
}

// remapForGC updates the mapping for a GC relocation and stages the move
// for the pre-reset log record.
func (d *Device) remapForGC(lba int64, old, moved ocssd.PPA) bool {
	cur, ok := d.pmap.Lookup(lba)
	if !ok || cur != old {
		return false
	}
	if _, _, err := d.pmap.Update(lba, moved); err != nil {
		return false
	}
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(lba))
	binary.LittleEndian.PutUint64(buf[8:], moved.Pack())
	d.gcMoves = append(d.gcMoves, buf[:]...)
	return true
}

// persistGCMoves logs the staged relocations durably before the victim
// chunk is erased (wired as the collector's BeforeReset hook).
func (d *Device) persistGCMoves(now vclock.Time, victim ocssd.ChunkID) (vclock.Time, error) {
	if len(d.gcMoves) == 0 {
		return now, nil
	}
	payload := d.gcMoves
	d.gcMoves = nil
	d.nextTx++
	_, end, err := d.wal.Append(now, ftlcore.Record{
		Type:    ftlcore.RecGCMove,
		TxID:    d.nextTx,
		Payload: payload,
	}, true)
	return end, err
}

// registerClosedChunks hands chunks that the stripe writer has filled to
// the collector. A chunk is "closed" once its device write pointer hits
// capacity; the writer has already rotated past it.
func (d *Device) registerClosedChunks(ppas []ocssd.PPA) {
	spc := d.geo.SectorsPerChunk()
	seen := make(map[ocssd.ChunkID]bool)
	for _, p := range ppas {
		id := p.ChunkOf()
		if seen[id] {
			continue
		}
		seen[id] = true
		if info, err := d.media.Chunk(id); err == nil && info.State == ocssd.ChunkClosed && info.WP == spc {
			d.gc.AddCandidate(id)
		}
	}
}

// noteAppIOs records user I/O per touched group for the GC interference
// accounting of §4.3.
func (d *Device) noteAppIOs(ppas []ocssd.PPA, at vclock.Time) {
	seen := 0
	for _, p := range ppas {
		bit := 1 << uint(p.Group)
		if seen&bit != 0 {
			continue
		}
		seen |= bit
		d.gc.NoteAppIO(p.Group, at)
	}
}

// FreeChunks reports the allocator's free pool size (diagnostics).
func (d *Device) FreeChunks() int { return d.alloc.FreeCount() }

// GCCandidates reports the collector's candidate count (diagnostics).
func (d *Device) GCCandidates() int { return d.gc.CandidateCount() }
