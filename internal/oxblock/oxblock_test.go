package oxblock

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/nand"
	"repro/internal/ocssd"
	"repro/internal/ox"
	"repro/internal/vclock"
)

// testRig builds a small device (4 groups × 2 PUs × 16 chunks of 1.5 MB)
// and a controller for OX-Block testing.
func testRig(t *testing.T, seed int64) *ox.Controller {
	t.Helper()
	chip := nand.Geometry{
		Planes: 2, BlocksPerPlane: 16, PagesPerBlock: 48,
		SectorsPerPage: 4, SectorSize: 4096, Cell: nand.TLC,
	}
	geo := ocssd.Finish(ocssd.Geometry{
		Groups: 4, PUsPerGroup: 2, ChunksPerPU: 16, Chip: chip,
		ChannelMBps: 800, CacheMBps: 3200, CacheMB: 16, MaxOpenPerPU: 16,
	})
	// OX-Block relies on a power-loss-protected controller cache: data
	// buffered below ws_opt survives a crash (capacitor flush). Without
	// PLP every commit would have to pad its data stripes.
	dev, err := ocssd.New(geo, ocssd.Options{Seed: seed, PowerLossProtected: true})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := ox.NewController(ox.DefaultConfig(), dev)
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

func newBlockDev(t *testing.T, ctrl *ox.Controller, cfg Config) (*Device, vclock.Time) {
	t.Helper()
	d, _, end, err := New(ctrl, cfg, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d, end
}

func pagesOf(n int, fill byte) []byte {
	return bytes.Repeat([]byte{fill}, n*4096)
}

func TestWriteReadRoundTrip(t *testing.T) {
	ctrl := testRig(t, 1)
	d, now := newBlockDev(t, ctrl, Config{LogicalPages: 2048})
	end, err := d.Write(now, 10, pagesOf(4, 0xAA))
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, _, err := d.Read(end, 10, 4)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, pagesOf(4, 0xAA)) {
		t.Fatal("round-trip mismatch")
	}
	s := d.Stats()
	if s.Txns != 1 || s.PagesWritten != 4 || s.PagesRead != 4 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestUnmappedReadsAsZeros(t *testing.T) {
	ctrl := testRig(t, 1)
	d, now := newBlockDev(t, ctrl, Config{LogicalPages: 2048})
	got, _, err := d.Read(now, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 2*4096)) {
		t.Fatal("unmapped pages should read as zeros")
	}
}

func TestOverwriteReturnsNewest(t *testing.T) {
	ctrl := testRig(t, 1)
	d, now := newBlockDev(t, ctrl, Config{LogicalPages: 2048})
	var err error
	for i := byte(1); i <= 5; i++ {
		now, err = d.Write(now, 7, pagesOf(2, i))
		if err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := d.Read(now, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 {
		t.Fatalf("read %x, want newest (5)", got[0])
	}
}

func TestValidationErrors(t *testing.T) {
	ctrl := testRig(t, 1)
	d, now := newBlockDev(t, ctrl, Config{LogicalPages: 1024})
	if _, err := d.Write(now, -1, pagesOf(1, 1)); !errors.Is(err, ErrRange) {
		t.Fatalf("negative lpn: %v", err)
	}
	if _, err := d.Write(now, 1023, pagesOf(2, 1)); !errors.Is(err, ErrRange) {
		t.Fatalf("overflow extent: %v", err)
	}
	if _, err := d.Write(now, 0, make([]byte, 100)); !errors.Is(err, ErrPageSize) {
		t.Fatalf("partial page: %v", err)
	}
	if _, err := d.Write(now, 0, pagesOf(MaxTxPages+4, 1)); !errors.Is(err, ErrTxTooLarge) {
		t.Fatalf("huge tx: %v", err)
	}
	if _, _, err := d.Read(now, 1024, 1); !errors.Is(err, ErrRange) {
		t.Fatalf("read out of range: %v", err)
	}
	if _, err := d.Trim(now, 2000, 1); !errors.Is(err, ErrRange) {
		t.Fatalf("trim out of range: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	ctrl := testRig(t, 1)
	// Logical capacity beyond 90% of physical must be rejected.
	phys := int64(4*2*16) * int64(384)
	if _, _, _, err := New(ctrl, Config{LogicalPages: phys}, 0); err == nil {
		t.Fatal("no-overprovisioning config should be rejected")
	}
}

func TestTrim(t *testing.T) {
	ctrl := testRig(t, 1)
	d, now := newBlockDev(t, ctrl, Config{LogicalPages: 2048})
	now, err := d.Write(now, 50, pagesOf(4, 0x77))
	if err != nil {
		t.Fatal(err)
	}
	now, err = d.Trim(now, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := d.Read(now, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:2*4096], make([]byte, 2*4096)) {
		t.Fatal("trimmed pages should read as zeros")
	}
	if got[2*4096] != 0x77 {
		t.Fatal("untrimmed pages must survive")
	}
}

func TestRecoveryAfterCleanWrites(t *testing.T) {
	ctrl := testRig(t, 1)
	dev := ctrl.Media().(*ocssd.Device)
	d, now := newBlockDev(t, ctrl, Config{LogicalPages: 2048})
	var err error
	for i := int64(0); i < 8; i++ {
		now, err = d.Write(now, i*8, pagesOf(8, byte(i+1)))
		if err != nil {
			t.Fatal(err)
		}
	}
	// Crash: all volatile state vanishes; a new instance recovers from
	// the checkpoint (none here) and the log.
	dev.Crash()
	d2, report, end, err := New(ctrl, Config{LogicalPages: 2048}, now)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if report == nil || report.ReplayedRecords != 8 {
		t.Fatalf("report = %+v, want 8 replayed", report)
	}
	for i := int64(0); i < 8; i++ {
		got, _, err := d2.Read(end, i*8, 8)
		if err != nil {
			t.Fatalf("read after recovery: %v", err)
		}
		if got[0] != byte(i+1) {
			t.Fatalf("lpn %d: got %x, want %x", i*8, got[0], i+1)
		}
	}
}

func TestRecoveryWithCheckpoint(t *testing.T) {
	ctrl := testRig(t, 1)
	dev := ctrl.Media().(*ocssd.Device)
	d, now := newBlockDev(t, ctrl, Config{LogicalPages: 2048})
	var err error
	for i := int64(0); i < 6; i++ {
		now, err = d.Write(now, i*4, pagesOf(4, byte(0x10+i)))
		if err != nil {
			t.Fatal(err)
		}
	}
	now, err = d.Checkpoint(now)
	if err != nil {
		t.Fatal(err)
	}
	// Two more transactions after the checkpoint.
	now, err = d.Write(now, 100, pagesOf(4, 0xA1))
	if err != nil {
		t.Fatal(err)
	}
	now, err = d.Write(now, 104, pagesOf(4, 0xA2))
	if err != nil {
		t.Fatal(err)
	}
	dev.Crash()
	d2, report, end, err := New(ctrl, Config{LogicalPages: 2048}, now)
	if err != nil {
		t.Fatal(err)
	}
	if !report.CheckpointFound {
		t.Fatal("checkpoint not found")
	}
	if report.ReplayedRecords != 2 {
		t.Fatalf("replayed %d records, want 2 (only post-checkpoint)", report.ReplayedRecords)
	}
	for i := int64(0); i < 6; i++ {
		got, _, err := d2.Read(end, i*4, 1)
		if err != nil || got[0] != byte(0x10+i) {
			t.Fatalf("pre-checkpoint data lost at %d: %x %v", i*4, got[0], err)
		}
	}
	got, _, _ := d2.Read(end, 100, 1)
	if got[0] != 0xA1 {
		t.Fatal("post-checkpoint data lost")
	}
}

func TestCheckpointBoundsReplay(t *testing.T) {
	// With periodic checkpoints, recovery replays only the records since
	// the last one — the mechanism behind Figure 3's bounded recovery.
	ctrl := testRig(t, 1)
	dev := ctrl.Media().(*ocssd.Device)
	d, now := newBlockDev(t, ctrl, Config{
		LogicalPages:       2048,
		CheckpointInterval: 50 * vclock.Millisecond,
	})
	var err error
	for i := 0; i < 30; i++ {
		now, err = d.Write(now, int64(i%16)*8, pagesOf(8, byte(i)))
		if err != nil {
			t.Fatal(err)
		}
	}
	if d.Stats().Checkpoints == 0 {
		t.Fatal("interval checkpoints did not run")
	}
	dev.Crash()
	_, report, _, err := New(ctrl, Config{LogicalPages: 2048}, now)
	if err != nil {
		t.Fatal(err)
	}
	if report.ReplayedRecords >= 30 {
		t.Fatalf("replayed %d records; checkpoints should bound replay", report.ReplayedRecords)
	}
}

func TestAtomicityAcrossGC(t *testing.T) {
	// Overwrite a working set many times to force GC, then verify every
	// page still returns its newest value — GC must never lose data.
	ctrl := testRig(t, 1)
	d, now := newBlockDev(t, ctrl, Config{LogicalPages: 3000})
	var err error
	version := make(map[int64]byte)
	for round := 0; round < 40; round++ {
		lpn := int64(round%25) * 32
		fill := byte(round + 1)
		now, err = d.Write(now, lpn, pagesOf(32, fill))
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		version[lpn] = fill
	}
	if d.GCStats().Collections == 0 {
		t.Log("warning: GC never triggered; consider shrinking the device")
	}
	for lpn, want := range version {
		got, _, err := d.Read(now, lpn, 32)
		if err != nil {
			t.Fatalf("read %d: %v", lpn, err)
		}
		for i := 0; i < 32*4096; i += 4096 {
			if got[i] != want {
				t.Fatalf("lpn %d page %d: got %x, want %x", lpn, i/4096, got[i], want)
			}
		}
	}
}

func TestGCThenRecovery(t *testing.T) {
	// Crash after heavy churn (GC has relocated data and reset chunks);
	// recovery must land on the newest committed values.
	ctrl := testRig(t, 2)
	dev := ctrl.Media().(*ocssd.Device)
	d, now := newBlockDev(t, ctrl, Config{
		LogicalPages:       3000,
		CheckpointInterval: 200 * vclock.Millisecond,
	})
	var err error
	version := make(map[int64]byte)
	for round := 0; round < 60; round++ {
		lpn := int64(round%25) * 32
		fill := byte(round + 1)
		now, err = d.Write(now, lpn, pagesOf(32, fill))
		if err != nil {
			t.Fatal(err)
		}
		version[lpn] = fill
	}
	if d.GCStats().Collections == 0 {
		t.Skip("GC never ran; nothing to verify")
	}
	dev.Crash()
	d2, _, end, err := New(ctrl, Config{LogicalPages: 3000}, now)
	if err != nil {
		t.Fatal(err)
	}
	for lpn, want := range version {
		got, _, err := d2.Read(end, lpn, 32)
		if err != nil {
			t.Fatalf("read %d after recovery: %v", lpn, err)
		}
		if got[0] != want {
			t.Fatalf("lpn %d: got %x, want %x after GC+recovery", lpn, got[0], want)
		}
	}
}

func TestDoubleCrashRecovery(t *testing.T) {
	ctrl := testRig(t, 3)
	dev := ctrl.Media().(*ocssd.Device)
	d, now := newBlockDev(t, ctrl, Config{LogicalPages: 2048})
	now, err := d.Write(now, 0, pagesOf(4, 0x11))
	if err != nil {
		t.Fatal(err)
	}
	dev.Crash()
	d2, _, now, err := New(ctrl, Config{LogicalPages: 2048}, now)
	if err != nil {
		t.Fatal(err)
	}
	now, err = d2.Write(now, 4, pagesOf(4, 0x22))
	if err != nil {
		t.Fatal(err)
	}
	dev.Crash()
	d3, _, end, err := New(ctrl, Config{LogicalPages: 2048}, now)
	if err != nil {
		t.Fatal(err)
	}
	a, _, _ := d3.Read(end, 0, 1)
	b, _, _ := d3.Read(end, 4, 1)
	if a[0] != 0x11 || b[0] != 0x22 {
		t.Fatalf("after two crashes: %x %x", a[0], b[0])
	}
}

func TestRecoveryTimeGrowsWithLog(t *testing.T) {
	// Figure 3's core shape: without checkpoints, recovery time grows
	// with the amount of log written.
	measure := func(txns int) vclock.Duration {
		ctrl := testRig(t, 4)
		dev := ctrl.Media().(*ocssd.Device)
		d, now := newBlockDev(t, ctrl, Config{LogicalPages: 3000})
		var err error
		for i := 0; i < txns; i++ {
			now, err = d.Write(now, int64(i%20)*16, pagesOf(16, byte(i)))
			if err != nil {
				t.Fatal(err)
			}
		}
		dev.Crash()
		_, report, _, err := New(ctrl, Config{LogicalPages: 3000}, now)
		if err != nil {
			t.Fatal(err)
		}
		return report.Duration
	}
	short := measure(5)
	long := measure(40)
	if long <= short {
		t.Fatalf("recovery time should grow with log: %v vs %v", short, long)
	}
}

func TestWriteIsTransactionalUnderCrash(t *testing.T) {
	// A multi-page write whose commit record never reached the log must
	// roll back entirely: no torn transactions.
	ctrl := testRig(t, 5)
	dev := ctrl.Media().(*ocssd.Device)
	d, now := newBlockDev(t, ctrl, Config{LogicalPages: 2048})
	now, err := d.Write(now, 0, pagesOf(8, 0x01))
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-transaction: data written, mapping updated in
	// RAM, but commit record not durable. We emulate by writing data
	// through the media directly (bypassing the WAL) — the recovered
	// device must not see it.
	raw := ctrl.Media()
	id := ocssd.ChunkID{Group: 3, PU: 1, Chunk: 9}
	if _, _, err := raw.Append(now, id, pagesOf(8, 0xEE)); err != nil {
		t.Fatal(err)
	}
	dev.Crash()
	d2, _, end, err := New(ctrl, Config{LogicalPages: 2048}, now)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := d2.Read(end, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x01 {
		t.Fatal("committed transaction lost")
	}
	// The uncommitted raw data must be invisible at every logical page.
	for lpn := int64(8); lpn < 64; lpn += 8 {
		got, _, err := d2.Read(end, lpn, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] == 0xEE {
			t.Fatal("uncommitted data leaked into the logical space")
		}
	}
}

func TestGCLocalityCounters(t *testing.T) {
	ctrl := testRig(t, 6)
	d, now := newBlockDev(t, ctrl, Config{LogicalPages: 3000})
	var err error
	for round := 0; round < 50; round++ {
		now, err = d.Write(now, int64(round%25)*32, pagesOf(32, byte(round)))
		if err != nil {
			t.Fatal(err)
		}
	}
	gs := d.GCStats()
	if gs.TotalAppIOs == 0 {
		t.Fatal("app I/O accounting missing")
	}
	if gs.Collections > 0 && gs.AffectedAppIOs > gs.TotalAppIOs {
		t.Fatalf("affected %d > total %d", gs.AffectedAppIOs, gs.TotalAppIOs)
	}
}
