// Package oxeleos implements OX-ELEOS, the application-specific FTL the
// paper built for log-structured storage in LLAMA (§4.2): it "exposes
// Open-Channel SSDs as log-structured storage, with writes at the
// granularity of Log-Structured Storage (LSS) I/O buffers, typically
// 8MB, and reads at the granularity of a single page". Pages inside a
// buffer may be fixed 4 KB or variable-sized ("an arbitrary number of
// bytes"), so the mapping granularity is *smaller* than the device's
// unit of read — the challenge §4.2 highlights.
//
// The write path is where Figure 7 lives: each flushed buffer crosses
// the controller twice (network→FTL copy, FTL→device copy), and those
// copies are what saturate the storage controller at two host threads.
package oxeleos

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/ftl/ftlcore"
	"repro/internal/ocssd"
	"repro/internal/ox"
	"repro/internal/vclock"
)

// Errors returned by the store.
var (
	ErrBufferSize = errors.New("oxeleos: flush exceeds the LSS I/O buffer size")
	ErrPageDesc   = errors.New("oxeleos: page descriptor out of buffer bounds")
	ErrNotFound   = errors.New("oxeleos: page not found")
)

// extentRecLen is the encoded size of one page-extent entry in a
// RecAppExtent WAL record: id(8) ppa(8) offset(4) length(4) pad(4).
const extentRecLen = 28

// PageDesc describes one logical page inside an LSS I/O buffer.
type PageDesc struct {
	ID     int64 // logical page identifier (LLAMA PID)
	Offset int   // byte offset within the buffer
	Length int   // byte length (variable-size pages: any positive value)
}

// Config tunes the store.
type Config struct {
	// BufferBytes is the LSS I/O buffer size (default 8 MB, §4.2).
	BufferBytes int
	// StripeWidth is the number of open chunks the log stripes over
	// (0 = one per PU).
	StripeWidth int
	// CPUPerPageMap is controller CPU per page-mapping operation.
	CPUPerPageMap vclock.Duration
}

// Stats aggregates store activity.
type Stats struct {
	Flushes      int64
	BytesFlushed int64
	PageReads    int64
	Deletes      int64
	ChunksFreed  int64
}

// Store is an OX-ELEOS log-structured store over an Open-Channel SSD.
type Store struct {
	ctrl  *ox.Controller
	media ox.Media
	geo   ocssd.Geometry
	cfg   Config

	mu     sync.Mutex
	vmap   *ftlcore.VarMap
	alloc  *ftlcore.Allocator
	writer *ftlcore.StripeWriter
	wal    *ftlcore.WAL
	// liveBytes tracks live data per chunk so Clean can reclaim chunks
	// whose pages were all deleted or superseded.
	liveBytes map[ocssd.ChunkID]int64
	chunkOf   map[int64][]ocssd.ChunkID // page id -> chunks holding its extent
	// recoveredSegs are WAL segments of earlier epochs: they are the only
	// durable copy of the recovered mapping (OX-ELEOS has no checkpoint),
	// so Clean must never reclaim them.
	recoveredSegs map[ocssd.ChunkID]bool
	stats         Stats
}

// RecoveryReport summarizes one crash recovery.
type RecoveryReport struct {
	ReplayedSegments int
	ReplayedRecords  int
	End              vclock.Time
}

// baseStore builds the store skeleton shared by New and Recover.
func baseStore(ctrl *ox.Controller, cfg Config) (*Store, error) {
	geo := ctrl.Media().Geometry()
	if cfg.BufferBytes <= 0 {
		cfg.BufferBytes = 8 << 20
	}
	if cfg.BufferBytes%(geo.WSMin*geo.Chip.SectorSize) != 0 {
		return nil, fmt.Errorf("oxeleos: buffer size %d is not a ws_min multiple", cfg.BufferBytes)
	}
	if cfg.StripeWidth <= 0 {
		cfg.StripeWidth = geo.TotalPUs()
	}
	if cfg.CPUPerPageMap <= 0 {
		cfg.CPUPerPageMap = vclock.Microsecond
	}
	s := &Store{
		ctrl:          ctrl,
		media:         ctrl.Media(),
		geo:           geo,
		cfg:           cfg,
		vmap:          ftlcore.NewVarMap(),
		liveBytes:     make(map[ocssd.ChunkID]int64),
		chunkOf:       make(map[int64][]ocssd.ChunkID),
		recoveredSegs: make(map[ocssd.ChunkID]bool),
	}
	s.alloc = ftlcore.NewAllocator(s.media, nil)
	return s, nil
}

// New opens a fresh OX-ELEOS store on the controller's media.
func New(ctrl *ox.Controller, cfg Config) (*Store, error) {
	s, err := baseStore(ctrl, cfg)
	if err != nil {
		return nil, err
	}
	s.wal, err = ftlcore.NewWAL(s.media, ctrl, s.alloc, ftlcore.WALConfig{Target: ftlcore.AnyTarget(), Epoch: 1})
	if err != nil {
		return nil, err
	}
	s.writer, err = ftlcore.NewStripeWriter(s.media, s.alloc, ftlcore.AnyTarget(), s.cfg.StripeWidth)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Recover reopens an OX-ELEOS store after a crash: it scans the media
// for WAL segments, replays every extent record in (epoch, LSN) order —
// last write wins, deletions replay as trims — and starts a fresh log
// at a higher epoch. The allocator only pools free chunks, so data and
// old log segments survive until Clean decides otherwise (and old log
// segments, being the sole durable mapping, are never cleaned).
func Recover(now vclock.Time, ctrl *ox.Controller, cfg Config) (*Store, *RecoveryReport, error) {
	s, err := baseStore(ctrl, cfg)
	if err != nil {
		return nil, nil, err
	}
	segs, maxEpoch, end, err := ftlcore.ScanLog(now, s.media, ctrl)
	if err != nil {
		return nil, nil, err
	}
	walCfg := ftlcore.WALConfig{Target: ftlcore.AnyTarget()}
	n, end, err := ftlcore.ReplayLog(end, s.media, ctrl, walCfg, segs, 0, 0, s.applyRecord)
	if err != nil {
		return nil, nil, err
	}
	for _, seg := range segs {
		s.recoveredSegs[seg.Chunk] = true
	}
	s.wal, err = ftlcore.NewWAL(s.media, ctrl, s.alloc, ftlcore.WALConfig{Target: ftlcore.AnyTarget(), Epoch: maxEpoch + 1})
	if err != nil {
		return nil, nil, err
	}
	s.writer, err = ftlcore.NewStripeWriter(s.media, s.alloc, ftlcore.AnyTarget(), s.cfg.StripeWidth)
	if err != nil {
		return nil, nil, err
	}
	return s, &RecoveryReport{ReplayedSegments: len(segs), ReplayedRecords: n, End: end}, nil
}

// applyRecord rebuilds the volatile mapping from one WAL record. Only
// called during Recover, before the store is shared.
func (s *Store) applyRecord(r ftlcore.Record) error {
	switch r.Type {
	case ftlcore.RecAppExtent:
		for off := 0; off+extentRecLen <= len(r.Payload); off += extentRecLen {
			rec := r.Payload[off:]
			id := int64(binary.LittleEndian.Uint64(rec[0:]))
			entry := ftlcore.VarEntry{
				PPA:    ocssd.Unpack(binary.LittleEndian.Uint64(rec[8:])),
				Offset: int(binary.LittleEndian.Uint32(rec[16:])),
				Length: int(binary.LittleEndian.Uint32(rec[20:])),
			}
			s.dropPage(id)
			if err := s.vmap.Update(id, entry); err != nil {
				return err
			}
			// Replay charges the whole extent to its starting chunk: the
			// per-chunk split of the original flush is not logged, and
			// liveBytes is a reclamation heuristic, not an invariant.
			c := entry.PPA.ChunkOf()
			s.liveBytes[c] += int64(entry.Length)
			s.chunkOf[id] = []ocssd.ChunkID{c}
		}
	case ftlcore.RecTrim:
		for off := 0; off+8 <= len(r.Payload); off += 8 {
			id := int64(binary.LittleEndian.Uint64(r.Payload[off:]))
			s.dropPage(id)
			s.vmap.Delete(id)
		}
	}
	return nil
}

// Stats returns a snapshot of store statistics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// BufferBytes reports the configured LSS I/O buffer size.
func (s *Store) BufferBytes() int { return s.cfg.BufferBytes }

// Controller reports the OX controller the store accounts against —
// the execution domain of every OX-ELEOS command. Flushes cross the
// controller memory bus and the store-wide lock, so commands of one
// store never overlap in wall-clock time.
func (s *Store) Controller() *ox.Controller { return s.ctrl }

// Flush writes one LSS I/O buffer to flash and maps the pages it
// contains. This is the Figure 7 write path: the buffer is copied from
// the network stack into the FTL, then from the FTL to the device, and
// both copies cross the controller's memory bus. The returned time is
// when the flush is acknowledged to the host.
func (s *Store) Flush(now vclock.Time, buf []byte, pages []PageDesc) (vclock.Time, error) {
	if len(buf) == 0 || len(buf) > s.cfg.BufferBytes {
		return now, fmt.Errorf("%w: %d bytes", ErrBufferSize, len(buf))
	}
	secSize := s.geo.Chip.SectorSize
	for _, p := range pages {
		if p.Offset < 0 || p.Length <= 0 || p.Offset+p.Length > len(buf) {
			return now, fmt.Errorf("%w: id %d [%d,+%d)", ErrPageDesc, p.ID, p.Offset, p.Length)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ctrl.NoteUserIO()

	// Copy 1: network stack → FTL buffer.
	end := s.ctrl.CopyRX(now, int64(len(buf)))
	// Copy 2: FTL → device (DMA staging).
	end = s.ctrl.CopyToDevice(end, int64(len(buf)))

	// Pad the tail to a ws_min multiple and append to the striped log.
	unit := s.geo.WSMin * secSize
	payload := buf
	if rem := len(buf) % unit; rem != 0 {
		payload = make([]byte, len(buf)+unit-rem)
		copy(payload, buf)
	}
	ppas, end, err := s.writer.Append(end, payload)
	if err != nil {
		return end, err
	}

	// Map each page to its byte extent and log the mapping.
	walPayload := make([]byte, 0, len(pages)*28)
	var rec [28]byte
	for _, p := range pages {
		sector := p.Offset / secSize
		entry := ftlcore.VarEntry{
			PPA:    ppas[sector],
			Offset: p.Offset % secSize,
			Length: p.Length,
		}
		s.dropPage(p.ID)
		if err := s.vmap.Update(p.ID, entry); err != nil {
			return end, err
		}
		s.trackPage(p.ID, ppas, p.Offset, p.Length)
		binary.LittleEndian.PutUint64(rec[0:], uint64(p.ID))
		binary.LittleEndian.PutUint64(rec[8:], entry.PPA.Pack())
		binary.LittleEndian.PutUint32(rec[16:], uint32(entry.Offset))
		binary.LittleEndian.PutUint32(rec[20:], uint32(entry.Length))
		binary.LittleEndian.PutUint32(rec[24:], 0)
		walPayload = append(walPayload, rec[:]...)
	}
	end = s.ctrl.CPUWork(end, vclock.Duration(len(pages))*s.cfg.CPUPerPageMap)
	if _, end, err = s.wal.Append(end, ftlcore.Record{
		Type:    ftlcore.RecAppExtent,
		Payload: walPayload,
	}, true); err != nil {
		return end, err
	}
	s.stats.Flushes++
	s.stats.BytesFlushed += int64(len(buf))
	return end, nil
}

// trackPage charges a page's bytes to the chunks its extent touches.
func (s *Store) trackPage(id int64, ppas []ocssd.PPA, offset, length int) {
	secSize := s.geo.Chip.SectorSize
	first := offset / secSize
	last := (offset + length - 1) / secSize
	var chunks []ocssd.ChunkID
	prev := ocssd.ChunkID{Group: -1}
	for sec := first; sec <= last && sec < len(ppas); sec++ {
		c := ppas[sec].ChunkOf()
		if c != prev {
			chunks = append(chunks, c)
			prev = c
		}
	}
	for _, c := range chunks {
		s.liveBytes[c] += int64(length) / int64(len(chunks))
	}
	s.chunkOf[id] = chunks
}

// dropPage removes a page's live-byte accounting (on supersede/delete).
func (s *Store) dropPage(id int64) {
	old, ok := s.vmap.Lookup(id)
	if !ok {
		return
	}
	chunks := s.chunkOf[id]
	for _, c := range chunks {
		s.liveBytes[c] -= int64(old.Length) / int64(len(chunks))
		if s.liveBytes[c] < 0 {
			s.liveBytes[c] = 0
		}
	}
	delete(s.chunkOf, id)
}

// ReadPage returns a logical page's bytes. Reads are page-granular even
// though placement is buffer-granular; a variable-size page smaller than
// a sector still costs (at least) one sector read — the §4.2 point about
// mapping below the unit of read.
func (s *Store) ReadPage(now vclock.Time, id int64) ([]byte, vclock.Time, error) {
	s.mu.Lock()
	entry, ok := s.vmap.Lookup(id)
	s.mu.Unlock()
	if !ok {
		return nil, now, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	s.ctrl.NoteUserIO()
	secSize := s.geo.Chip.SectorSize
	nsec := (entry.Offset + entry.Length + secSize - 1) / secSize
	ppas := make([]ocssd.PPA, nsec)
	p := entry.PPA
	for i := range ppas {
		ppas[i] = p
		p = p.Next()
		// Extents may wrap across stripes of the striped log: the next
		// sector of the buffer is the next sector in the same chunk only
		// while within the stripe-writer unit; for simplicity extents
		// never span appends (enforced by flush: one buffer, sequential
		// ppas), so consecutive sectors follow ppas order. Wrapping is
		// handled at flush time by using the actual assigned ppas.
	}
	end := s.ctrl.CPUWork(now, s.cfg.CPUPerPageMap)
	buf := make([]byte, nsec*secSize)
	end, err := s.media.VectorRead(end, ppas, buf)
	if err != nil {
		return nil, end, err
	}
	s.mu.Lock()
	s.stats.PageReads++
	s.mu.Unlock()
	out := make([]byte, entry.Length)
	copy(out, buf[entry.Offset:entry.Offset+entry.Length])
	return out, end, nil
}

// Delete unmaps a logical page. Space is reclaimed lazily by Clean.
// The trim is logged (asynchronously — it rides the next sync) so
// recovery does not resurrect the page.
func (s *Store) Delete(now vclock.Time, id int64) (vclock.Time, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.vmap.Lookup(id); !ok {
		return now, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	s.dropPage(id)
	s.vmap.Delete(id)
	var payload [8]byte
	binary.LittleEndian.PutUint64(payload[:], uint64(id))
	_, end, err := s.wal.Append(now, ftlcore.Record{Type: ftlcore.RecTrim, Payload: payload[:]}, false)
	if err != nil {
		return end, err
	}
	s.stats.Deletes++
	return s.ctrl.CPUWork(end, s.cfg.CPUPerPageMap), nil
}

// Clean resets closed chunks that hold no live bytes (LSS cleaning is
// the application's job in LLAMA — relocation happens by re-flushing —
// so the FTL only reclaims fully dead chunks).
func (s *Store) Clean(now vclock.Time) (int, vclock.Time, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	end := now
	freed := 0
	writerOpen := make(map[ocssd.ChunkID]bool)
	for _, id := range s.writer.OpenChunks() {
		writerOpen[id] = true
	}
	walHeld := make(map[ocssd.ChunkID]bool)
	for _, id := range s.wal.Segments() {
		walHeld[id] = true
	}
	// Trims are logged lazily; a chunk is only dead because some trim
	// said so. Force the log before erasing anything, or a crash could
	// lose the trim and resurrect extents inside a reused chunk.
	e, err := s.wal.Sync(end)
	if err != nil {
		return 0, end, err
	}
	end = e
	for _, ci := range s.media.Report() {
		if ci.State != ocssd.ChunkClosed || writerOpen[ci.ID] || walHeld[ci.ID] || s.recoveredSegs[ci.ID] {
			continue
		}
		if s.liveBytes[ci.ID] > 0 {
			continue
		}
		e, err := s.alloc.Release(end, ci.ID)
		if err != nil {
			continue
		}
		end = e
		delete(s.liveBytes, ci.ID)
		freed++
	}
	s.stats.ChunksFreed += int64(freed)
	return freed, end, nil
}

// Len reports the number of mapped pages.
func (s *Store) Len() int { return s.vmap.Len() }
