// Package oxeleos implements OX-ELEOS, the application-specific FTL the
// paper built for log-structured storage in LLAMA (§4.2): it "exposes
// Open-Channel SSDs as log-structured storage, with writes at the
// granularity of Log-Structured Storage (LSS) I/O buffers, typically
// 8MB, and reads at the granularity of a single page". Pages inside a
// buffer may be fixed 4 KB or variable-sized ("an arbitrary number of
// bytes"), so the mapping granularity is *smaller* than the device's
// unit of read — the challenge §4.2 highlights.
//
// The write path is where Figure 7 lives: each flushed buffer crosses
// the controller twice (network→FTL copy, FTL→device copy), and those
// copies are what saturate the storage controller at two host threads.
package oxeleos

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/ftl/ftlcore"
	"repro/internal/ocssd"
	"repro/internal/ox"
	"repro/internal/vclock"
)

// Errors returned by the store.
var (
	ErrBufferSize = errors.New("oxeleos: flush exceeds the LSS I/O buffer size")
	ErrPageDesc   = errors.New("oxeleos: page descriptor out of buffer bounds")
	ErrNotFound   = errors.New("oxeleos: page not found")
)

// PageDesc describes one logical page inside an LSS I/O buffer.
type PageDesc struct {
	ID     int64 // logical page identifier (LLAMA PID)
	Offset int   // byte offset within the buffer
	Length int   // byte length (variable-size pages: any positive value)
}

// Config tunes the store.
type Config struct {
	// BufferBytes is the LSS I/O buffer size (default 8 MB, §4.2).
	BufferBytes int
	// StripeWidth is the number of open chunks the log stripes over
	// (0 = one per PU).
	StripeWidth int
	// CPUPerPageMap is controller CPU per page-mapping operation.
	CPUPerPageMap vclock.Duration
}

// Stats aggregates store activity.
type Stats struct {
	Flushes      int64
	BytesFlushed int64
	PageReads    int64
	Deletes      int64
	ChunksFreed  int64
}

// Store is an OX-ELEOS log-structured store over an Open-Channel SSD.
type Store struct {
	ctrl  *ox.Controller
	media ox.Media
	geo   ocssd.Geometry
	cfg   Config

	mu     sync.Mutex
	vmap   *ftlcore.VarMap
	alloc  *ftlcore.Allocator
	writer *ftlcore.StripeWriter
	wal    *ftlcore.WAL
	// liveBytes tracks live data per chunk so Clean can reclaim chunks
	// whose pages were all deleted or superseded.
	liveBytes map[ocssd.ChunkID]int64
	chunkOf   map[int64][]ocssd.ChunkID // page id -> chunks holding its extent
	stats     Stats
}

// New opens a fresh OX-ELEOS store on the controller's media.
func New(ctrl *ox.Controller, cfg Config) (*Store, error) {
	geo := ctrl.Media().Geometry()
	if cfg.BufferBytes <= 0 {
		cfg.BufferBytes = 8 << 20
	}
	if cfg.BufferBytes%(geo.WSMin*geo.Chip.SectorSize) != 0 {
		return nil, fmt.Errorf("oxeleos: buffer size %d is not a ws_min multiple", cfg.BufferBytes)
	}
	if cfg.StripeWidth <= 0 {
		cfg.StripeWidth = geo.TotalPUs()
	}
	if cfg.CPUPerPageMap <= 0 {
		cfg.CPUPerPageMap = vclock.Microsecond
	}
	s := &Store{
		ctrl:      ctrl,
		media:     ctrl.Media(),
		geo:       geo,
		cfg:       cfg,
		vmap:      ftlcore.NewVarMap(),
		liveBytes: make(map[ocssd.ChunkID]int64),
		chunkOf:   make(map[int64][]ocssd.ChunkID),
	}
	s.alloc = ftlcore.NewAllocator(s.media, nil)
	var err error
	s.wal, err = ftlcore.NewWAL(s.media, ctrl, s.alloc, ftlcore.WALConfig{Target: ftlcore.AnyTarget(), Epoch: 1})
	if err != nil {
		return nil, err
	}
	s.writer, err = ftlcore.NewStripeWriter(s.media, s.alloc, ftlcore.AnyTarget(), cfg.StripeWidth)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Stats returns a snapshot of store statistics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// BufferBytes reports the configured LSS I/O buffer size.
func (s *Store) BufferBytes() int { return s.cfg.BufferBytes }

// Controller reports the OX controller the store accounts against —
// the execution domain of every OX-ELEOS command. Flushes cross the
// controller memory bus and the store-wide lock, so commands of one
// store never overlap in wall-clock time.
func (s *Store) Controller() *ox.Controller { return s.ctrl }

// Flush writes one LSS I/O buffer to flash and maps the pages it
// contains. This is the Figure 7 write path: the buffer is copied from
// the network stack into the FTL, then from the FTL to the device, and
// both copies cross the controller's memory bus. The returned time is
// when the flush is acknowledged to the host.
func (s *Store) Flush(now vclock.Time, buf []byte, pages []PageDesc) (vclock.Time, error) {
	if len(buf) == 0 || len(buf) > s.cfg.BufferBytes {
		return now, fmt.Errorf("%w: %d bytes", ErrBufferSize, len(buf))
	}
	secSize := s.geo.Chip.SectorSize
	for _, p := range pages {
		if p.Offset < 0 || p.Length <= 0 || p.Offset+p.Length > len(buf) {
			return now, fmt.Errorf("%w: id %d [%d,+%d)", ErrPageDesc, p.ID, p.Offset, p.Length)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ctrl.NoteUserIO()

	// Copy 1: network stack → FTL buffer.
	end := s.ctrl.CopyRX(now, int64(len(buf)))
	// Copy 2: FTL → device (DMA staging).
	end = s.ctrl.CopyToDevice(end, int64(len(buf)))

	// Pad the tail to a ws_min multiple and append to the striped log.
	unit := s.geo.WSMin * secSize
	payload := buf
	if rem := len(buf) % unit; rem != 0 {
		payload = make([]byte, len(buf)+unit-rem)
		copy(payload, buf)
	}
	ppas, end, err := s.writer.Append(end, payload)
	if err != nil {
		return end, err
	}

	// Map each page to its byte extent and log the mapping.
	walPayload := make([]byte, 0, len(pages)*28)
	var rec [28]byte
	for _, p := range pages {
		sector := p.Offset / secSize
		entry := ftlcore.VarEntry{
			PPA:    ppas[sector],
			Offset: p.Offset % secSize,
			Length: p.Length,
		}
		s.dropPage(p.ID)
		if err := s.vmap.Update(p.ID, entry); err != nil {
			return end, err
		}
		s.trackPage(p.ID, ppas, p.Offset, p.Length)
		binary.LittleEndian.PutUint64(rec[0:], uint64(p.ID))
		binary.LittleEndian.PutUint64(rec[8:], entry.PPA.Pack())
		binary.LittleEndian.PutUint32(rec[16:], uint32(entry.Offset))
		binary.LittleEndian.PutUint32(rec[20:], uint32(entry.Length))
		binary.LittleEndian.PutUint32(rec[24:], 0)
		walPayload = append(walPayload, rec[:]...)
	}
	end = s.ctrl.CPUWork(end, vclock.Duration(len(pages))*s.cfg.CPUPerPageMap)
	if _, end, err = s.wal.Append(end, ftlcore.Record{
		Type:    ftlcore.RecAppExtent,
		Payload: walPayload,
	}, true); err != nil {
		return end, err
	}
	s.stats.Flushes++
	s.stats.BytesFlushed += int64(len(buf))
	return end, nil
}

// trackPage charges a page's bytes to the chunks its extent touches.
func (s *Store) trackPage(id int64, ppas []ocssd.PPA, offset, length int) {
	secSize := s.geo.Chip.SectorSize
	first := offset / secSize
	last := (offset + length - 1) / secSize
	var chunks []ocssd.ChunkID
	prev := ocssd.ChunkID{Group: -1}
	for sec := first; sec <= last && sec < len(ppas); sec++ {
		c := ppas[sec].ChunkOf()
		if c != prev {
			chunks = append(chunks, c)
			prev = c
		}
	}
	for _, c := range chunks {
		s.liveBytes[c] += int64(length) / int64(len(chunks))
	}
	s.chunkOf[id] = chunks
}

// dropPage removes a page's live-byte accounting (on supersede/delete).
func (s *Store) dropPage(id int64) {
	old, ok := s.vmap.Lookup(id)
	if !ok {
		return
	}
	chunks := s.chunkOf[id]
	for _, c := range chunks {
		s.liveBytes[c] -= int64(old.Length) / int64(len(chunks))
		if s.liveBytes[c] < 0 {
			s.liveBytes[c] = 0
		}
	}
	delete(s.chunkOf, id)
}

// ReadPage returns a logical page's bytes. Reads are page-granular even
// though placement is buffer-granular; a variable-size page smaller than
// a sector still costs (at least) one sector read — the §4.2 point about
// mapping below the unit of read.
func (s *Store) ReadPage(now vclock.Time, id int64) ([]byte, vclock.Time, error) {
	s.mu.Lock()
	entry, ok := s.vmap.Lookup(id)
	s.mu.Unlock()
	if !ok {
		return nil, now, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	s.ctrl.NoteUserIO()
	secSize := s.geo.Chip.SectorSize
	nsec := (entry.Offset + entry.Length + secSize - 1) / secSize
	ppas := make([]ocssd.PPA, nsec)
	p := entry.PPA
	for i := range ppas {
		ppas[i] = p
		p = p.Next()
		// Extents may wrap across stripes of the striped log: the next
		// sector of the buffer is the next sector in the same chunk only
		// while within the stripe-writer unit; for simplicity extents
		// never span appends (enforced by flush: one buffer, sequential
		// ppas), so consecutive sectors follow ppas order. Wrapping is
		// handled at flush time by using the actual assigned ppas.
	}
	end := s.ctrl.CPUWork(now, s.cfg.CPUPerPageMap)
	buf := make([]byte, nsec*secSize)
	end, err := s.media.VectorRead(end, ppas, buf)
	if err != nil {
		return nil, end, err
	}
	s.mu.Lock()
	s.stats.PageReads++
	s.mu.Unlock()
	out := make([]byte, entry.Length)
	copy(out, buf[entry.Offset:entry.Offset+entry.Length])
	return out, end, nil
}

// Delete unmaps a logical page. Space is reclaimed lazily by Clean.
func (s *Store) Delete(now vclock.Time, id int64) (vclock.Time, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.vmap.Lookup(id); !ok {
		return now, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	s.dropPage(id)
	s.vmap.Delete(id)
	s.stats.Deletes++
	return s.ctrl.CPUWork(now, s.cfg.CPUPerPageMap), nil
}

// Clean resets closed chunks that hold no live bytes (LSS cleaning is
// the application's job in LLAMA — relocation happens by re-flushing —
// so the FTL only reclaims fully dead chunks).
func (s *Store) Clean(now vclock.Time) (int, vclock.Time, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	end := now
	freed := 0
	writerOpen := make(map[ocssd.ChunkID]bool)
	for _, id := range s.writer.OpenChunks() {
		writerOpen[id] = true
	}
	walHeld := make(map[ocssd.ChunkID]bool)
	for _, id := range s.wal.Segments() {
		walHeld[id] = true
	}
	for _, ci := range s.media.Report() {
		if ci.State != ocssd.ChunkClosed || writerOpen[ci.ID] || walHeld[ci.ID] {
			continue
		}
		if s.liveBytes[ci.ID] > 0 {
			continue
		}
		e, err := s.alloc.Release(end, ci.ID)
		if err != nil {
			continue
		}
		end = e
		delete(s.liveBytes, ci.ID)
		freed++
	}
	s.stats.ChunksFreed += int64(freed)
	return freed, end, nil
}

// Len reports the number of mapped pages.
func (s *Store) Len() int { return s.vmap.Len() }
