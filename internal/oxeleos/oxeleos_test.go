package oxeleos

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/nand"
	"repro/internal/ocssd"
	"repro/internal/ox"
	"repro/internal/vclock"
)

func testRig(t *testing.T) *ox.Controller {
	t.Helper()
	chip := nand.Geometry{
		Planes: 2, BlocksPerPlane: 16, PagesPerBlock: 48,
		SectorsPerPage: 4, SectorSize: 4096, Cell: nand.TLC,
	}
	geo := ocssd.Finish(ocssd.Geometry{
		Groups: 4, PUsPerGroup: 2, ChunksPerPU: 16, Chip: chip,
		ChannelMBps: 800, CacheMBps: 3200, CacheMB: 16, MaxOpenPerPU: 16,
	})
	dev, err := ocssd.New(geo, ocssd.Options{Seed: 1, PowerLossProtected: true})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := ox.NewController(ox.DefaultConfig(), dev)
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

func newStore(t *testing.T, bufBytes int) (*Store, *ox.Controller) {
	t.Helper()
	ctrl := testRig(t)
	s, err := New(ctrl, Config{BufferBytes: bufBytes})
	if err != nil {
		t.Fatal(err)
	}
	return s, ctrl
}

func TestFlushAndReadFixedPages(t *testing.T) {
	s, _ := newStore(t, 1<<20)
	// An LSS buffer of 16 fixed 4 KB pages.
	buf := make([]byte, 16*4096)
	var pages []PageDesc
	for i := 0; i < 16; i++ {
		for j := 0; j < 4096; j++ {
			buf[i*4096+j] = byte(i + 1)
		}
		pages = append(pages, PageDesc{ID: int64(i), Offset: i * 4096, Length: 4096})
	}
	end, err := s.Flush(0, buf, pages)
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	for i := 0; i < 16; i++ {
		got, _, err := s.ReadPage(end, int64(i))
		if err != nil {
			t.Fatalf("ReadPage %d: %v", i, err)
		}
		if len(got) != 4096 || got[0] != byte(i+1) || got[4095] != byte(i+1) {
			t.Fatalf("page %d content wrong", i)
		}
	}
	st := s.Stats()
	if st.Flushes != 1 || st.PageReads != 16 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestVariableSizedPages(t *testing.T) {
	// §4.2: variable-sized pages of an arbitrary number of bytes, mapped
	// at a granularity smaller than the unit of read.
	s, _ := newStore(t, 1<<20)
	sizes := []int{100, 4096, 777, 9000, 1, 5000}
	buf := make([]byte, 0, 32768)
	var pages []PageDesc
	for i, sz := range sizes {
		start := len(buf)
		pages = append(pages, PageDesc{ID: int64(i), Offset: start, Length: sz})
		buf = append(buf, bytes.Repeat([]byte{byte(0x40 + i)}, sz)...)
	}
	end, err := s.Flush(0, buf, pages)
	if err != nil {
		t.Fatal(err)
	}
	for i, sz := range sizes {
		got, _, err := s.ReadPage(end, int64(i))
		if err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		if len(got) != sz {
			t.Fatalf("page %d length = %d, want %d", i, len(got), sz)
		}
		if got[0] != byte(0x40+i) || got[len(got)-1] != byte(0x40+i) {
			t.Fatalf("page %d content corrupted", i)
		}
	}
	if s.Len() != len(sizes) {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestFlushValidation(t *testing.T) {
	s, _ := newStore(t, 1<<20)
	if _, err := s.Flush(0, make([]byte, 2<<20), nil); !errors.Is(err, ErrBufferSize) {
		t.Fatalf("oversized flush: %v", err)
	}
	if _, err := s.Flush(0, nil, nil); !errors.Is(err, ErrBufferSize) {
		t.Fatalf("empty flush: %v", err)
	}
	buf := make([]byte, 4096)
	bad := []PageDesc{{ID: 1, Offset: 4000, Length: 200}}
	if _, err := s.Flush(0, buf, bad); !errors.Is(err, ErrPageDesc) {
		t.Fatalf("out-of-bounds page: %v", err)
	}
	if _, err := s.Flush(0, buf, []PageDesc{{ID: 1, Offset: 0, Length: 0}}); !errors.Is(err, ErrPageDesc) {
		t.Fatalf("zero-length page: %v", err)
	}
}

func TestSupersedeAndDelete(t *testing.T) {
	s, _ := newStore(t, 1<<20)
	buf1 := bytes.Repeat([]byte{0x01}, 4096)
	end, err := s.Flush(0, buf1, []PageDesc{{ID: 9, Offset: 0, Length: 4096}})
	if err != nil {
		t.Fatal(err)
	}
	buf2 := bytes.Repeat([]byte{0x02}, 4096)
	end, err = s.Flush(end, buf2, []PageDesc{{ID: 9, Offset: 0, Length: 4096}})
	if err != nil {
		t.Fatal(err)
	}
	got, end, err := s.ReadPage(end, 9)
	if err != nil || got[0] != 0x02 {
		t.Fatalf("supersede: %x %v", got[0], err)
	}
	if _, err := s.Delete(end, 9); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ReadPage(end, 9); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read after delete: %v", err)
	}
	if _, err := s.Delete(end, 9); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestWritePathCopiesCrossMemBus(t *testing.T) {
	// Figure 7's mechanism: every flushed byte crosses the memory bus
	// twice (network→FTL, FTL→device).
	s, ctrl := newStore(t, 1<<20)
	buf := make([]byte, 512*1024)
	if _, err := s.Flush(0, buf, []PageDesc{{ID: 1, Offset: 0, Length: 1024}}); err != nil {
		t.Fatal(err)
	}
	st := ctrl.Stats()
	if st.BytesRX != int64(len(buf)) {
		t.Fatalf("RX bytes = %d, want %d", st.BytesRX, len(buf))
	}
	if st.BytesToDevice != int64(len(buf)) {
		t.Fatalf("to-device bytes = %d, want %d", st.BytesToDevice, len(buf))
	}
}

func TestZeroCopyAblation(t *testing.T) {
	// §4.4: zero-copy receive halves the bus traffic per flush.
	mk := func(zeroCopy bool) vclock.Time {
		chip := nand.Geometry{
			Planes: 2, BlocksPerPlane: 16, PagesPerBlock: 48,
			SectorsPerPage: 4, SectorSize: 4096, Cell: nand.TLC,
		}
		geo := ocssd.Finish(ocssd.Geometry{
			Groups: 4, PUsPerGroup: 2, ChunksPerPU: 16, Chip: chip,
			ChannelMBps: 800, CacheMBps: 3200, CacheMB: 16, MaxOpenPerPU: 16,
		})
		dev, err := ocssd.New(geo, ocssd.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		cfg := ox.DefaultConfig()
		cfg.ZeroCopyRX = zeroCopy
		ctrl, err := ox.NewController(cfg, dev)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(ctrl, Config{BufferBytes: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		end, err := s.Flush(0, make([]byte, 1<<20), []PageDesc{{ID: 1, Offset: 0, Length: 4096}})
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	withCopy := mk(false)
	without := mk(true)
	if without >= withCopy {
		t.Fatalf("zero-copy flush (%v) should beat copying flush (%v)", without, withCopy)
	}
}

func TestCleanReclaimsDeadChunks(t *testing.T) {
	// StripeWidth 1 so the log fills (and closes) chunks quickly.
	ctrl := testRig(t)
	s, err := New(ctrl, Config{BufferBytes: 1 << 20, StripeWidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	geo := s.media.Geometry()
	// Fill several chunks' worth of pages, then delete them all.
	pageBytes := 64 * 1024
	total := 3 * int(geo.ChunkBytes()) / pageBytes
	end := vclock.Time(0)
	for i := 0; i < total; i++ {
		buf := bytes.Repeat([]byte{byte(i)}, pageBytes)
		end, err = s.Flush(end, buf, []PageDesc{{ID: int64(i), Offset: 0, Length: pageBytes}})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < total; i++ {
		if end, err = s.Delete(end, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	freed, _, err := s.Clean(end)
	if err != nil {
		t.Fatal(err)
	}
	if freed == 0 {
		t.Fatal("clean reclaimed nothing after deleting everything")
	}
	if s.Stats().ChunksFreed != int64(freed) {
		t.Fatal("stats mismatch")
	}
}

func TestDefaultBufferIs8MB(t *testing.T) {
	ctrl := testRig(t)
	s, err := New(ctrl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.BufferBytes() != 8<<20 {
		t.Fatalf("default buffer = %d, want 8MB (§4.2)", s.BufferBytes())
	}
}

func TestMisalignedBufferRejected(t *testing.T) {
	ctrl := testRig(t)
	if _, err := New(ctrl, Config{BufferBytes: 10000}); err == nil {
		t.Fatal("non-ws_min buffer size should be rejected")
	}
}
