package oxeleos

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/nand"
	"repro/internal/ocssd"
	"repro/internal/ox"
	"repro/internal/vclock"
)

func durableGeo() ocssd.Geometry {
	chip := nand.Geometry{
		Planes: 2, BlocksPerPlane: 16, PagesPerBlock: 48,
		SectorsPerPage: 4, SectorSize: 4096, Cell: nand.TLC,
	}
	return ocssd.Finish(ocssd.Geometry{
		Groups: 4, PUsPerGroup: 2, ChunksPerPU: 16, Chip: chip,
		ChannelMBps: 800, CacheMBps: 3200, CacheMB: 16, MaxOpenPerPU: 16,
	})
}

// TestRecoverAfterPowerCut flushes buffers on a file-backed device, pulls
// the plug mid-workload, and verifies Recover rebuilds every acknowledged
// page (and keeps deleted pages deleted) on the reopened device.
func TestRecoverAfterPowerCut(t *testing.T) {
	geo := durableGeo()
	path := filepath.Join(t.TempDir(), "eleos.img")
	inj := fault.New(fault.Config{Seed: 7})
	dev, err := ocssd.New(geo, ocssd.Options{
		Seed: 1, PowerLossProtected: true, BackendPath: path, Faults: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := ox.NewController(ox.DefaultConfig(), dev)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(ctrl, Config{BufferBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}

	pageContent := func(id int64, gen int) []byte {
		b := make([]byte, 4096)
		for j := range b {
			b[j] = byte(int(id)*11 + gen*101 + j)
		}
		return b
	}

	// oracle holds the generation of the last acknowledged flush per page,
	// -1 after an acknowledged delete.
	oracle := make(map[int64]int)
	// pending holds the generation of the flush interrupted by the cut:
	// its WAL record may have reached the backend via the PLP flush, so
	// recovery is allowed to surface either the acked or pending content.
	pending := make(map[int64]int)
	now := vclock.Time(0)
	flush := func(ids []int64, gen int) bool {
		buf := make([]byte, 0, len(ids)*4096)
		var pages []PageDesc
		for i, id := range ids {
			buf = append(buf, pageContent(id, gen)...)
			pages = append(pages, PageDesc{ID: id, Offset: i * 4096, Length: 4096})
		}
		end, err := s.Flush(now, buf, pages)
		if err != nil {
			if errors.Is(err, fault.ErrPowerCut) {
				for _, id := range ids {
					pending[id] = gen
				}
				return false
			}
			t.Fatalf("Flush: %v", err)
		}
		now = end
		for _, id := range ids {
			oracle[id] = gen
		}
		return true
	}

	flush([]int64{0, 1, 2, 3}, 1)
	flush([]int64{4, 5, 6, 7}, 1)
	flush([]int64{2, 3}, 2) // supersede
	if end, err := s.Delete(now, 5); err != nil {
		t.Fatalf("Delete: %v", err)
	} else {
		now = end
		oracle[5] = -1
	}

	// Arm the cut and keep flushing until it fires.
	inj.PowerCut(5)
	for gen := 3; ; gen++ {
		if !flush([]int64{8, 9}, gen) {
			break
		}
		if gen > 100 {
			t.Fatal("power cut never fired")
		}
	}
	dev.Close()

	// Reopen from the backend and recover.
	dev2, err := ocssd.OpenDevice(geo, ocssd.Options{Seed: 1, PowerLossProtected: true, BackendPath: path})
	if err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	defer dev2.Close()
	ctrl2, err := ox.NewController(ox.DefaultConfig(), dev2)
	if err != nil {
		t.Fatal(err)
	}
	s2, rep, err := Recover(now, ctrl2, Config{BufferBytes: 1 << 20})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rep.ReplayedSegments == 0 || rep.ReplayedRecords == 0 {
		t.Fatalf("recovery replayed nothing: %+v", rep)
	}
	now = rep.End

	for id, gen := range oracle {
		got, end, err := s2.ReadPage(now, id)
		if gen < 0 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("page %d: deleted page resurrected (err=%v)", id, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("page %d: lost acknowledged write: %v", id, err)
		}
		now = end
		ok := bytes.Equal(got, pageContent(id, gen))
		if pg, has := pending[id]; has && !ok {
			ok = bytes.Equal(got, pageContent(id, pg))
		}
		if !ok {
			t.Fatalf("page %d: content mismatch after recovery", id)
		}
	}

	// The recovered store must accept new flushes and not clean old logs.
	s2.Flush(now, pageContent(42, 9), []PageDesc{{ID: 42, Offset: 0, Length: 4096}})
	if got, _, err := s2.ReadPage(now, 42); err != nil || !bytes.Equal(got, pageContent(42, 9)) {
		t.Fatalf("post-recovery flush broken: %v", err)
	}
}
