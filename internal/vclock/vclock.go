// Package vclock provides the virtual-time substrate used by the whole
// simulator. Flash chips, channel buses and controller CPU cores are
// contended devices; each is modeled as a Resource with a reservation
// timeline. Actors (host threads, FTL background jobs) carry their own
// virtual clock and advance it by acquiring resources. Interference,
// queueing and saturation emerge from overlapping reservations, at
// simulation speed and deterministically, without wall-clock sleeping.
package vclock

import (
	"fmt"
	"sync"
)

// Time is an instant in virtual time, in nanoseconds since device power-on.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units, mirroring package time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Seconds reports d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros reports d as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fµs", d.Micros())
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// DurationFor returns the virtual time needed to move n bytes at rate
// mbps megabytes per second (1 MB = 1e6 bytes).
func DurationFor(n int64, mbps float64) Duration {
	if mbps <= 0 || n <= 0 {
		return 0
	}
	return Duration(float64(n) / (mbps * 1e6) * float64(Second))
}

// Max returns the later of two instants.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of two instants.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Resource is a serially-reusable device: at most one reservation holds it
// at any virtual instant. Acquire serializes in call order, which for
// single-threaded deterministic drivers means virtual-time order.
type Resource struct {
	mu       sync.Mutex
	name     string
	freeAt   Time
	busy     Duration
	acquires int64
}

// NewResource returns an idle resource with the given diagnostic name.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Name reports the diagnostic name given at construction.
func (r *Resource) Name() string { return r.name }

// Acquire reserves the resource for dur starting no earlier than now.
// It returns the reservation's start (max(now, free instant)) and end.
// A zero-duration acquire still serializes after current reservations.
func (r *Resource) Acquire(now Time, dur Duration) (start, end Time) {
	if dur < 0 {
		dur = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	start = Max(now, r.freeAt)
	end = start.Add(dur)
	r.freeAt = end
	r.busy += dur
	r.acquires++
	return start, end
}

// FreeAt reports the earliest instant at which the resource is free.
func (r *Resource) FreeAt() Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.freeAt
}

// Busy reports the cumulative reserved time.
func (r *Resource) Busy() Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.busy
}

// Acquires reports how many reservations have been made.
func (r *Resource) Acquires() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.acquires
}

// Utilization reports the fraction of [0, now] the resource was reserved.
// It is clamped to [0, 1]; a resource reserved into the future past now
// counts only the portion up to now.
func (r *Resource) Utilization(now Time) float64 {
	if now <= 0 {
		return 0
	}
	r.mu.Lock()
	busy := r.busy
	free := r.freeAt
	r.mu.Unlock()
	if free > now {
		busy -= free.Sub(now)
	}
	u := float64(busy) / float64(now)
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// Reset returns the resource to idle at time zero, clearing statistics.
func (r *Resource) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.freeAt = 0
	r.busy = 0
	r.acquires = 0
}

// Pool is a set of interchangeable resources (e.g. the cores of a
// controller CPU). Acquire picks the member that frees earliest.
//
// Member timelines live inside the pool itself — free/busy arrays plus
// an indexed min-heap over the free instants, all behind one mutex — so
// Acquire is a single lock acquisition and one O(log n) sift instead of
// an O(n) scan. The heap is ordered lexicographically by (free instant,
// member index), which makes the root exactly the member a linear scan
// with a lowest-index tie-break would pick, so the choice — and every
// virtual time derived from it — is unchanged from the scan version.
type Pool struct {
	mu        sync.Mutex
	name      string
	free      []Time     // per-member earliest free instant
	busy      []Duration // per-member cumulative reserved time
	heap      []int32    // member indices, min-heap on (free[i], i)
	totalBusy Duration   // running sum of busy[*]
}

// NewPool creates a pool of n members (minimum 1) named name.
func NewPool(name string, n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{
		name: name,
		free: make([]Time, n),
		busy: make([]Duration, n),
		heap: make([]int32, n),
	}
	for i := range p.heap {
		p.heap[i] = int32(i)
	}
	return p
}

// Size reports the number of resources in the pool.
func (p *Pool) Size() int { return len(p.free) }

// less orders heap entries by free instant, ties broken on member
// index — the deterministic tie-break the O(n) scan used to give.
func (p *Pool) less(a, b int32) bool {
	return p.free[a] < p.free[b] || (p.free[a] == p.free[b] && a < b)
}

// siftDown restores the heap invariant after the member at heap
// position i had its free instant extended.
func (p *Pool) siftDown(i int) {
	n := len(p.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && p.less(p.heap[l], p.heap[min]) {
			min = l
		}
		if r < n && p.less(p.heap[r], p.heap[min]) {
			min = r
		}
		if min == i {
			return
		}
		p.heap[i], p.heap[min] = p.heap[min], p.heap[i]
		i = min
	}
}

// NextFree reports the earliest instant at which any member is free.
func (p *Pool) NextFree() Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.free[p.heap[0]]
}

// Acquire reserves dur on the member that becomes free earliest (ties
// go to the lowest index, keeping the choice deterministic).
func (p *Pool) Acquire(now Time, dur Duration) (start, end Time) {
	if dur < 0 {
		dur = 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	best := p.heap[0]
	start = Max(now, p.free[best])
	end = start.Add(dur)
	p.free[best] = end
	p.busy[best] += dur
	p.totalBusy += dur
	p.siftDown(0)
	return start, end
}

// Busy reports the cumulative reserved time summed over members.
func (p *Pool) Busy() Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.totalBusy
}

// Utilization reports aggregate utilization of the pool over [0, now]:
// the average of per-member utilizations, each clamped to [0, 1] with
// reservations extending past now counted only up to now.
func (p *Pool) Utilization(now Time) float64 {
	if now <= 0 {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var u float64
	for i := range p.free {
		busy := p.busy[i]
		if p.free[i] > now {
			busy -= p.free[i].Sub(now)
		}
		m := float64(busy) / float64(now)
		if m < 0 {
			m = 0
		}
		if m > 1 {
			m = 1
		}
		u += m
	}
	return u / float64(len(p.free))
}

// Reset returns every member to idle at time zero.
func (p *Pool) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.free {
		p.free[i] = 0
		p.busy[i] = 0
		p.heap[i] = int32(i)
	}
	p.totalBusy = 0
}

// Actor is a process in virtual time: a host thread, a db_bench client,
// an FTL background job. It carries a local clock that only moves forward.
type Actor struct {
	name string
	now  Time
}

// NewActor returns an actor whose clock reads start.
func NewActor(name string, start Time) *Actor {
	return &Actor{name: name, now: start}
}

// Name reports the actor's diagnostic name.
func (a *Actor) Name() string { return a.name }

// Now reports the actor's current virtual time.
func (a *Actor) Now() Time { return a.now }

// AdvanceTo moves the clock forward to t; moving backwards is a no-op.
func (a *Actor) AdvanceTo(t Time) {
	if t > a.now {
		a.now = t
	}
}

// Advance moves the clock forward by d and returns the new time.
func (a *Actor) Advance(d Duration) Time {
	if d > 0 {
		a.now = a.now.Add(d)
	}
	return a.now
}

// Use reserves dur on r at the actor's clock and advances the clock to
// the end of the reservation. It returns the reservation window.
func (a *Actor) Use(r *Resource, dur Duration) (start, end Time) {
	start, end = r.Acquire(a.now, dur)
	a.now = end
	return start, end
}
