package vclock

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestDurationUnits(t *testing.T) {
	if Second != 1e9 {
		t.Fatalf("Second = %d, want 1e9", int64(Second))
	}
	if Millisecond != 1e6 || Microsecond != 1e3 {
		t.Fatalf("unit mismatch: ms=%d µs=%d", int64(Millisecond), int64(Microsecond))
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0).Add(5 * Second)
	if got := t0.Seconds(); got != 5 {
		t.Fatalf("Seconds = %v, want 5", got)
	}
	if d := t0.Sub(Time(2 * int64(Second))); d != 3*Second {
		t.Fatalf("Sub = %v, want 3s", d)
	}
	if Max(Time(1), Time(2)) != 2 || Min(Time(1), Time(2)) != 1 {
		t.Fatal("Max/Min wrong")
	}
}

func TestDurationFor(t *testing.T) {
	// 100 MB at 100 MB/s should take exactly one virtual second.
	if d := DurationFor(100e6, 100); d != Second {
		t.Fatalf("DurationFor = %v, want 1s", d)
	}
	if d := DurationFor(0, 100); d != 0 {
		t.Fatalf("zero bytes should be free, got %v", d)
	}
	if d := DurationFor(100, 0); d != 0 {
		t.Fatalf("zero bandwidth should yield 0, got %v", d)
	}
}

func TestResourceSerializes(t *testing.T) {
	r := NewResource("chip")
	s1, e1 := r.Acquire(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first acquire = [%d,%d], want [0,10]", s1, e1)
	}
	// Second acquire at an earlier instant must queue behind the first.
	s2, e2 := r.Acquire(5, 10)
	if s2 != 10 || e2 != 20 {
		t.Fatalf("second acquire = [%d,%d], want [10,20]", s2, e2)
	}
	// An acquire after the resource is free starts at the caller's now.
	s3, e3 := r.Acquire(100, 10)
	if s3 != 100 || e3 != 110 {
		t.Fatalf("third acquire = [%d,%d], want [100,110]", s3, e3)
	}
	if r.Busy() != 30 {
		t.Fatalf("busy = %v, want 30", r.Busy())
	}
	if r.Acquires() != 3 {
		t.Fatalf("acquires = %d, want 3", r.Acquires())
	}
}

func TestResourceNegativeDuration(t *testing.T) {
	r := NewResource("x")
	s, e := r.Acquire(10, -5)
	if s != 10 || e != 10 {
		t.Fatalf("negative duration must clamp to 0, got [%d,%d]", s, e)
	}
}

func TestResourceUtilization(t *testing.T) {
	r := NewResource("x")
	r.Acquire(0, 50)
	if u := r.Utilization(100); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	// Reservation extending past the observation instant counts partially.
	r2 := NewResource("y")
	r2.Acquire(0, 200)
	if u := r2.Utilization(100); u != 1.0 {
		t.Fatalf("utilization = %v, want 1.0", u)
	}
	if u := r2.Utilization(0); u != 0 {
		t.Fatalf("utilization at t=0 should be 0, got %v", u)
	}
}

func TestResourceReset(t *testing.T) {
	r := NewResource("x")
	r.Acquire(0, 50)
	r.Reset()
	if r.Busy() != 0 || r.FreeAt() != 0 || r.Acquires() != 0 {
		t.Fatal("reset did not clear state")
	}
}

// Property: reservations on a resource never overlap and never run
// backwards, regardless of the request pattern.
func TestResourceNoOverlapProperty(t *testing.T) {
	f := func(reqs []uint16) bool {
		r := NewResource("p")
		var lastEnd Time = -1
		now := Time(0)
		for i, q := range reqs {
			dur := Duration(q % 1000)
			// Vary the caller's notion of now, including going backwards.
			if i%3 == 0 {
				now = now.Add(Duration(q % 50))
			}
			s, e := r.Acquire(now, dur)
			if s < now {
				return false // started before requested
			}
			if e.Sub(s) != dur {
				return false // wrong length
			}
			if s < lastEnd {
				return false // overlap with previous reservation
			}
			lastEnd = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: total busy time equals the sum of requested durations.
func TestResourceBusyAccountingProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		r := NewResource("p")
		var want Duration
		for _, d := range durs {
			dd := Duration(d)
			r.Acquire(0, dd)
			want += dd
		}
		return r.Busy() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceConcurrentSafety(t *testing.T) {
	r := NewResource("x")
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Acquire(0, 1)
			}
		}()
	}
	wg.Wait()
	if r.Busy() != Duration(goroutines*per) {
		t.Fatalf("busy = %v, want %d", r.Busy(), goroutines*per)
	}
}

func TestPoolPicksEarliestFree(t *testing.T) {
	p := NewPool("core", 2)
	// Two reservations land on distinct cores: both start at 0.
	s1, _ := p.Acquire(0, 100)
	s2, _ := p.Acquire(0, 100)
	if s1 != 0 || s2 != 0 {
		t.Fatalf("starts = %d,%d, want 0,0", s1, s2)
	}
	// Third must queue behind one of them.
	s3, e3 := p.Acquire(0, 50)
	if s3 != 100 || e3 != 150 {
		t.Fatalf("third = [%d,%d], want [100,150]", s3, e3)
	}
	if p.Busy() != 250 {
		t.Fatalf("busy = %v, want 250", p.Busy())
	}
}

func TestPoolUtilization(t *testing.T) {
	p := NewPool("core", 2)
	p.Acquire(0, 100) // one core fully busy over [0,100]
	if u := p.Utilization(100); u != 0.5 {
		t.Fatalf("pool utilization = %v, want 0.5", u)
	}
	p.Reset()
	if p.Busy() != 0 {
		t.Fatal("reset did not clear pool")
	}
}

func TestPoolMinimumSize(t *testing.T) {
	p := NewPool("c", 0)
	if p.Size() != 1 {
		t.Fatalf("size = %d, want clamp to 1", p.Size())
	}
}

func TestActorClock(t *testing.T) {
	a := NewActor("client", 100)
	if a.Now() != 100 || a.Name() != "client" {
		t.Fatal("constructor state wrong")
	}
	a.Advance(50)
	if a.Now() != 150 {
		t.Fatalf("now = %d, want 150", a.Now())
	}
	a.AdvanceTo(120) // backwards: no-op
	if a.Now() != 150 {
		t.Fatalf("clock moved backwards to %d", a.Now())
	}
	a.AdvanceTo(200)
	if a.Now() != 200 {
		t.Fatalf("now = %d, want 200", a.Now())
	}
	a.Advance(-5) // negative: no-op
	if a.Now() != 200 {
		t.Fatalf("negative advance moved clock: %d", a.Now())
	}
}

func TestActorUse(t *testing.T) {
	r := NewResource("chip")
	r.Acquire(0, 100) // busy until 100
	a := NewActor("c", 10)
	start, end := a.Use(r, 20)
	if start != 100 || end != 120 {
		t.Fatalf("use = [%d,%d], want [100,120]", start, end)
	}
	if a.Now() != 120 {
		t.Fatalf("actor now = %d, want 120", a.Now())
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{2 * Second, "2.000s"},
		{3 * Millisecond, "3.000ms"},
		{4 * Microsecond, "4.000µs"},
		{7, "7ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

// TestDisjointResourcesCommute pins the premise of the host's
// pipelined executor: reservation schedules on *disjoint* resources
// yield identical timelines regardless of interleaving, while
// reservations on a *shared* resource are order-sensitive — which is
// why overlap is only ever granted to commands whose footprints share
// no resource.
func TestDisjointResourcesCommute(t *testing.T) {
	type acq struct {
		now Time
		dur Duration
	}
	a := []acq{{0, 10}, {5, 20}, {40, 5}}
	b := []acq{{2, 7}, {30, 1}, {31, 9}}

	runDisjoint := func(order []int) (endsA, endsB []Time) {
		ra, rb := NewResource("a"), NewResource("b")
		ia, ib := 0, 0
		for _, who := range order {
			if who == 0 {
				_, end := ra.Acquire(a[ia].now, a[ia].dur)
				endsA = append(endsA, end)
				ia++
			} else {
				_, end := rb.Acquire(b[ib].now, b[ib].dur)
				endsB = append(endsB, end)
				ib++
			}
		}
		return endsA, endsB
	}
	a1, b1 := runDisjoint([]int{0, 0, 0, 1, 1, 1})
	a2, b2 := runDisjoint([]int{1, 0, 1, 0, 1, 0})
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("disjoint schedule A diverged under interleaving: %v vs %v", a1, a2)
		}
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("disjoint schedule B diverged under interleaving: %v vs %v", b1, b2)
		}
	}

	// Witness the converse: the same two reservations on ONE resource
	// depend on issue order, so shared resources must be serialized in
	// grant order by anyone who wants determinism.
	r1 := NewResource("shared")
	_, e1 := r1.Acquire(0, 10)
	_, e2 := r1.Acquire(20, 5)
	r2 := NewResource("shared")
	_, f2 := r2.Acquire(20, 5)
	_, f1 := r2.Acquire(0, 10)
	if e1 == f1 && e2 == f2 {
		t.Fatal("shared-resource acquisition unexpectedly commuted; the engine's conflict rule relies on it not doing so")
	}
}

// scanPool is the pre-heap reference implementation of Pool member
// selection: a linear scan for the earliest-free member with a
// lowest-index tie-break. The heap pool must match it decision for
// decision — same member, same start, same end — on any sequence.
type scanPool struct {
	free []Time
	busy []Duration
}

func (p *scanPool) acquire(now Time, dur Duration) (start, end Time) {
	if dur < 0 {
		dur = 0
	}
	best := 0
	for i := 1; i < len(p.free); i++ {
		if p.free[i] < p.free[best] {
			best = i
		}
	}
	start = Max(now, p.free[best])
	end = start.Add(dur)
	p.free[best] = end
	p.busy[best] += dur
	return start, end
}

// Property: the indexed-heap Pool is observationally identical to the
// O(n) scan pool — every Acquire returns the same (start, end), and
// NextFree, Busy and Utilization agree at every step — over randomized
// sizes, durations and non-monotonic now sequences.
func TestPoolMatchesScanProperty(t *testing.T) {
	f := func(size uint8, reqs []uint16) bool {
		n := int(size%9) + 1
		heap := NewPool("h", n)
		scan := &scanPool{free: make([]Time, n), busy: make([]Duration, n)}
		now := Time(0)
		for i, q := range reqs {
			dur := Duration(q % 700)
			if i%3 == 0 {
				now = now.Add(Duration(q % 40))
			} else if i%5 == 0 && now > 25 {
				now = now.Add(-25) // callers may present an older now
			}
			if heap.NextFree() != minTime(scan.free) {
				return false
			}
			hs, he := heap.Acquire(now, dur)
			ss, se := scan.acquire(now, dur)
			if hs != ss || he != se {
				return false
			}
		}
		var busy Duration
		for _, b := range scan.busy {
			busy += b
		}
		if heap.Busy() != busy {
			return false
		}
		if now > 0 {
			var u float64
			for i := range scan.free {
				b := scan.busy[i]
				if scan.free[i] > now {
					b -= scan.free[i].Sub(now)
				}
				m := float64(b) / float64(now)
				if m < 0 {
					m = 0
				}
				if m > 1 {
					m = 1
				}
				u += m
			}
			if heap.Utilization(now) != u/float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func minTime(ts []Time) Time {
	m := ts[0]
	for _, v := range ts[1:] {
		if v < m {
			m = v
		}
	}
	return m
}
