// Package zns implements OX-ZNS: the Zoned-Namespaces target that §2.3
// of the paper describes but that was never released ("It should be
// straightforward to define a LightNVM target that exposes the ZNS
// interface through a host-based FTL on top of Open-Channel SSDs, but
// this has not - to the best of our knowledge - been released or even
// announced"). It is the lighter-colored OX-ZNS quadrant of Figure 1.
//
// A zone is a fixed run of chunks confined to one group (so zone resets
// and writes never interfere across zones in different groups — the
// same isolation argument as vertical placement). The host sees the ZNS
// abstraction of §2.3: zones "must be written sequentially and reset
// before rewriting"; the FTL handles placement, the write pointer and
// wear, while the device handles planes and paired pages underneath.
package zns

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/ocssd"
	"repro/internal/ox"
	"repro/internal/vclock"
)

// ZoneState follows the NVMe ZNS state machine (reduced).
type ZoneState uint8

// Zone states.
const (
	ZoneEmpty ZoneState = iota
	ZoneOpen
	ZoneFull
	ZoneOffline
)

func (s ZoneState) String() string {
	switch s {
	case ZoneEmpty:
		return "empty"
	case ZoneOpen:
		return "open"
	case ZoneFull:
		return "full"
	case ZoneOffline:
		return "offline"
	default:
		return fmt.Sprintf("ZoneState(%d)", uint8(s))
	}
}

// Errors returned by the target.
var (
	ErrZoneRange    = errors.New("zns: zone index out of range")
	ErrZoneState    = errors.New("zns: invalid zone state for command")
	ErrWritePointer = errors.New("zns: write not at the zone write pointer")
	ErrZoneFull     = errors.New("zns: write exceeds zone capacity")
	ErrAlignment    = errors.New("zns: length not a multiple of the block size")
	ErrUnwritten    = errors.New("zns: read beyond the write pointer")
)

// Config sizes the target.
type Config struct {
	// ChunksPerZone is the number of chunks backing one zone (within a
	// single group). Zero selects the PUs-per-group (one chunk per PU).
	ChunksPerZone int
}

// ZoneInfo is one zone-report entry.
type ZoneInfo struct {
	Index    int
	State    ZoneState
	WP       int64 // next writable byte offset within the zone
	Capacity int64 // usable bytes
	Group    int   // the OCSSD group backing the zone
}

// Target is a ZNS namespace over an Open-Channel SSD.
//
// Locking is per zone: the zone table is immutable after New (zone
// count, chunk lists and group assignments never change), and each
// zone's mutable state — write pointer and state machine — sits behind
// that zone's own mutex. Commands on different zones therefore never
// contend in the FTL, and because every zone is confined to one device
// group, commands on zones in *different groups* share no media timing
// resource at all (per-group channel bus, per-PU chip timeline). That
// is the overlap the host's pipelined executor exploits: disjoint-group
// zone commands run concurrently end-to-end with bit-identical virtual
// timing. The one device-global exception is the write-back cache
// admission tracker; see ConcurrentWriteSafe.
type Target struct {
	ctrl  *ox.Controller
	media ox.Media
	geo   ocssd.Geometry
	cfg   Config

	zones []zone // immutable table; per-zone state behind zone.mu
}

type zone struct {
	mu     sync.Mutex
	state  ZoneState
	wp     int64
	chunks []ocssd.ChunkID // immutable
	group  int             // immutable
}

// New builds the target, carving every usable chunk into zones.
func New(ctrl *ox.Controller, cfg Config) (*Target, error) {
	geo := ctrl.Media().Geometry()
	if cfg.ChunksPerZone <= 0 {
		cfg.ChunksPerZone = geo.PUsPerGroup
	}
	t := &Target{ctrl: ctrl, media: ctrl.Media(), geo: geo, cfg: cfg}

	// Group chunks by OCSSD group, skipping offline ones, and carve
	// fixed-size zones out of each group (ZNS zones never span groups).
	// Note: carving follows report order, so a chunk that goes offline
	// between incarnations shifts the carving; rebuild-after-restore
	// assumes the offline set is stable across the crash.
	perGroup := make([][]ocssd.ChunkID, geo.Groups)
	infoByID := make(map[ocssd.ChunkID]ocssd.ChunkInfo)
	for _, ci := range t.media.Report() {
		infoByID[ci.ID] = ci
		if ci.State == ocssd.ChunkOffline {
			continue
		}
		perGroup[ci.ID.Group] = append(perGroup[ci.ID.Group], ci.ID)
	}
	type zoneSpec struct {
		chunks []ocssd.ChunkID
		group  int
	}
	var specs []zoneSpec
	for g, chunks := range perGroup {
		for len(chunks) >= cfg.ChunksPerZone {
			specs = append(specs, zoneSpec{
				chunks: chunks[:cfg.ChunksPerZone],
				group:  g,
			})
			chunks = chunks[cfg.ChunksPerZone:]
		}
	}
	if len(specs) == 0 {
		return nil, errors.New("zns: device too small for a single zone")
	}
	t.zones = make([]zone, len(specs))
	for i, s := range specs {
		t.zones[i].chunks = s.chunks
		t.zones[i].group = s.group
		t.rebuildZone(&t.zones[i], infoByID)
	}
	return t, nil
}

// rebuildZone derives a zone's state machine from the chunk report, so
// a target built over a device restored from its durable backend
// resumes exactly where the previous incarnation stopped. This is the
// ZNS counterpart of WAL replay: zone state is a pure function of the
// chunk write pointers. Blocks rotate round-robin over the zone's n
// chunks, so if chunk i holds s_i full stripes, the first missing block
// is B = min_i(i + s_i·n) and the zone write pointer is B blocks. A
// chunk holding more stripes than B implies (a torn multi-chunk append
// that died mid-rotation) leaves the zone unappendable past B: the zone
// surfaces as Full — readable up to the WP — until the host resets it.
func (t *Target) rebuildZone(z *zone, info map[ocssd.ChunkID]ocssd.ChunkInfo) {
	n := int64(len(z.chunks))
	blockBytes := int64(t.BlockSize())
	torn := false
	minB := int64(-1)
	for i, id := range z.chunks {
		ci := info[id]
		if ci.State == ocssd.ChunkOffline {
			z.state = ZoneOffline
			return
		}
		if ci.WP%t.geo.WSOpt != 0 {
			torn = true // a partial stripe can never be a whole zone block
		}
		b := int64(i) + int64(ci.WP/t.geo.WSOpt)*n
		if minB < 0 || b < minB {
			minB = b
		}
	}
	for i, id := range z.chunks {
		if int64(info[id].WP/t.geo.WSOpt) > (minB+n-1-int64(i))/n {
			torn = true
		}
	}
	z.wp = minB * blockBytes
	switch {
	case z.wp >= t.ZoneCapacity():
		z.wp = t.ZoneCapacity()
		z.state = ZoneFull
	case torn:
		z.state = ZoneFull
	case z.wp == 0:
		z.state = ZoneEmpty
	default:
		z.state = ZoneOpen
	}
}

// BlockSize is the write granularity: the device's unit of write, so
// the host never sees planes or paired pages (§2.3: ZNS "shields the
// host from the complexities of the physical address space").
func (t *Target) BlockSize() int { return t.geo.UnitOfWriteBytes() }

// ZoneCapacity reports the usable bytes of one zone.
func (t *Target) ZoneCapacity() int64 {
	return int64(t.cfg.ChunksPerZone) * t.geo.ChunkBytes()
}

// Zones reports the number of zones (fixed at construction).
func (t *Target) Zones() int { return len(t.zones) }

// Controller reports the OX controller the target accounts against —
// the execution domain the host interface keys zone footprints by.
func (t *Target) Controller() *ox.Controller { return t.ctrl }

// ZoneGroup reports the device group backing zone idx. The mapping is
// fixed at construction: a zone never spans groups.
func (t *Target) ZoneGroup(idx int) (int, bool) {
	if idx < 0 || idx >= len(t.zones) {
		return 0, false
	}
	return t.zones[idx].group, true
}

// ConcurrentWriteSafe reports whether zone writes on different groups
// may overlap in wall-clock time without perturbing virtual timing.
// They may not when the device models a write-back cache: cache
// admission is device-global serially-reusable state, so overlapping
// writes would make its drain order scheduling-dependent. Reads are
// always safe — they never mutate the cache tracker.
func (t *Target) ConcurrentWriteSafe() bool {
	c, ok := t.media.(interface{ WriteCacheEnabled() bool })
	return ok && !c.WriteCacheEnabled()
}

// Report returns the zone report (the ZNS zone-management receive).
func (t *Target) Report() []ZoneInfo {
	out := make([]ZoneInfo, len(t.zones))
	for i := range t.zones {
		out[i] = t.info(i)
	}
	return out
}

// Zone reports one zone.
func (t *Target) Zone(idx int) (ZoneInfo, error) {
	if idx < 0 || idx >= len(t.zones) {
		return ZoneInfo{}, fmt.Errorf("%w: %d", ErrZoneRange, idx)
	}
	return t.info(idx), nil
}

func (t *Target) info(idx int) ZoneInfo {
	z := &t.zones[idx]
	z.mu.Lock()
	defer z.mu.Unlock()
	return ZoneInfo{
		Index:    idx,
		State:    z.state,
		WP:       z.wp,
		Capacity: t.ZoneCapacity(),
		Group:    z.group,
	}
}

// locate maps a zone byte offset to its chunk and chunk-local sector.
// Blocks rotate across the zone's chunks so sequential zone writes use
// the group's parallel units evenly.
func (t *Target) locate(z *zone, off int64) (ocssd.ChunkID, int) {
	blockBytes := int64(t.BlockSize())
	blockIdx := off / blockBytes
	chunk := z.chunks[blockIdx%int64(len(z.chunks))]
	stripe := int(blockIdx / int64(len(z.chunks)))
	return chunk, stripe * t.geo.WSOpt
}

// Write appends data at the zone's write pointer; offset must equal the
// WP (ZNS sequential-write-required) and data must be whole blocks.
func (t *Target) Write(now vclock.Time, idx int, offset int64, data []byte) (vclock.Time, error) {
	if idx < 0 || idx >= len(t.zones) {
		return now, fmt.Errorf("%w: %d", ErrZoneRange, idx)
	}
	z := &t.zones[idx]
	z.mu.Lock()
	defer z.mu.Unlock()
	if offset != z.wp {
		return now, fmt.Errorf("%w: offset %d, wp %d", ErrWritePointer, offset, z.wp)
	}
	return t.appendLocked(now, idx, data)
}

// Append is the ZNS zone-append: data lands at the current WP, whose
// value is returned (so concurrent appenders need no coordination).
func (t *Target) Append(now vclock.Time, idx int, data []byte) (int64, vclock.Time, error) {
	if idx < 0 || idx >= len(t.zones) {
		return 0, now, fmt.Errorf("%w: %d", ErrZoneRange, idx)
	}
	z := &t.zones[idx]
	z.mu.Lock()
	defer z.mu.Unlock()
	at := z.wp
	end, err := t.appendLocked(now, idx, data)
	return at, end, err
}

// appendLocked advances the zone write pointer. Caller holds the
// zone's mutex.
func (t *Target) appendLocked(now vclock.Time, idx int, data []byte) (vclock.Time, error) {
	z := &t.zones[idx]
	switch z.state {
	case ZoneOffline:
		return now, fmt.Errorf("%w: zone %d offline", ErrZoneState, idx)
	case ZoneFull:
		return now, fmt.Errorf("%w: zone %d full", ErrZoneState, idx)
	}
	blockBytes := int64(t.BlockSize())
	if len(data) == 0 || int64(len(data))%blockBytes != 0 {
		return now, fmt.Errorf("%w: %d bytes", ErrAlignment, len(data))
	}
	if z.wp+int64(len(data)) > t.ZoneCapacity() {
		return now, fmt.Errorf("%w: wp %d + %d > %d", ErrZoneFull, z.wp, len(data), t.ZoneCapacity())
	}
	z.state = ZoneOpen
	end := now
	for off := int64(0); off < int64(len(data)); off += blockBytes {
		chunk, _ := t.locate(z, z.wp)
		_, e, err := t.media.Append(end, chunk, data[off:off+blockBytes])
		if err != nil {
			z.state = ZoneOffline
			return end, fmt.Errorf("zns: zone %d: %w", idx, err)
		}
		end = e
		z.wp += blockBytes
	}
	t.ctrl.NoteUserIO()
	if z.wp == t.ZoneCapacity() {
		z.state = ZoneFull
	}
	return end, nil
}

// Read returns length bytes from the zone starting at offset; the range
// must be block-aligned and below the write pointer.
func (t *Target) Read(now vclock.Time, idx int, offset, length int64) ([]byte, vclock.Time, error) {
	if idx < 0 || idx >= len(t.zones) {
		return nil, now, fmt.Errorf("%w: %d", ErrZoneRange, idx)
	}
	z := &t.zones[idx]
	blockBytes := int64(t.BlockSize())
	if length <= 0 || offset < 0 || offset%blockBytes != 0 || length%blockBytes != 0 {
		return nil, now, fmt.Errorf("%w: [%d,+%d)", ErrAlignment, offset, length)
	}
	z.mu.Lock()
	if offset+length > z.wp {
		z.mu.Unlock()
		return nil, now, fmt.Errorf("%w: [%d,+%d) past wp %d", ErrUnwritten, offset, length, z.wp)
	}
	type ext struct {
		chunk ocssd.ChunkID
		base  int
	}
	exts := make([]ext, 0, length/blockBytes)
	for off := offset; off < offset+length; off += blockBytes {
		c, base := t.locate(z, off)
		exts = append(exts, ext{chunk: c, base: base})
	}
	z.mu.Unlock()

	out := make([]byte, length)
	end := now
	for i, e := range exts {
		ppas := make([]ocssd.PPA, t.geo.WSOpt)
		for s := range ppas {
			ppas[s] = e.chunk.PPAOf(e.base + s)
		}
		var err error
		end, err = t.media.VectorRead(end, ppas, out[int64(i)*blockBytes:int64(i+1)*blockBytes])
		if err != nil {
			return nil, end, fmt.Errorf("zns: zone %d read: %w", idx, err)
		}
	}
	t.ctrl.NoteUserIO()
	return out, end, nil
}

// Reset returns the zone to empty (the ZNS reclaim primitive; chunk
// resets only, like SSTable deletion in LightLSM).
func (t *Target) Reset(now vclock.Time, idx int) (vclock.Time, error) {
	if idx < 0 || idx >= len(t.zones) {
		return now, fmt.Errorf("%w: %d", ErrZoneRange, idx)
	}
	z := &t.zones[idx]
	z.mu.Lock()
	defer z.mu.Unlock()
	if z.state == ZoneOffline {
		return now, fmt.Errorf("%w: zone %d offline", ErrZoneState, idx)
	}
	end := now
	for _, id := range z.chunks {
		info, err := t.media.Chunk(id)
		if err != nil {
			return end, err
		}
		if info.State == ocssd.ChunkFree {
			continue
		}
		e, err := t.media.Reset(end, id)
		if err != nil {
			z.state = ZoneOffline
			return end, fmt.Errorf("zns: zone %d reset: %w", idx, err)
		}
		end = e
	}
	z.state = ZoneEmpty
	z.wp = 0
	return end, nil
}

// Finish transitions a partially written zone to full (no more writes),
// padding the underlying chunks so everything is durable.
func (t *Target) Finish(now vclock.Time, idx int) (vclock.Time, error) {
	if idx < 0 || idx >= len(t.zones) {
		return now, fmt.Errorf("%w: %d", ErrZoneRange, idx)
	}
	z := &t.zones[idx]
	z.mu.Lock()
	defer z.mu.Unlock()
	if z.state == ZoneOffline {
		return now, fmt.Errorf("%w: zone %d offline", ErrZoneState, idx)
	}
	end := now
	for _, id := range z.chunks {
		e, err := t.media.Pad(end, id)
		if err != nil {
			return end, err
		}
		end = e
	}
	z.state = ZoneFull
	return end, nil
}
