package zns

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/nand"
	"repro/internal/ocssd"
	"repro/internal/ox"
	"repro/internal/vclock"
)

func newTarget(t *testing.T) *Target {
	t.Helper()
	chip := nand.Geometry{
		Planes: 2, BlocksPerPlane: 8, PagesPerBlock: 12,
		SectorsPerPage: 4, SectorSize: 4096, Cell: nand.TLC,
	}
	geo := ocssd.Finish(ocssd.Geometry{
		Groups: 4, PUsPerGroup: 2, ChunksPerPU: 8, Chip: chip,
		ChannelMBps: 800, CacheMBps: 3200, CacheMB: 4, MaxOpenPerPU: 8,
	})
	dev, err := ocssd.New(geo, ocssd.Options{Seed: 1, PowerLossProtected: true})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := ox.NewController(ox.DefaultConfig(), dev)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := New(ctrl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

func blockOf(t *Target, fill byte) []byte {
	return bytes.Repeat([]byte{fill}, t.BlockSize())
}

func TestGeometryCarving(t *testing.T) {
	tgt := newTarget(t)
	// 4 groups × 2 PUs × 8 chunks, 2 chunks per zone → 8 zones per
	// group, 32 zones total.
	if tgt.Zones() != 32 {
		t.Fatalf("zones = %d, want 32", tgt.Zones())
	}
	if tgt.BlockSize() != 96*1024 {
		t.Fatalf("block = %d, want 96KB (unit of write)", tgt.BlockSize())
	}
	// Zones never span groups (the ZNS isolation property).
	for _, zi := range tgt.Report() {
		if zi.State != ZoneEmpty || zi.WP != 0 {
			t.Fatalf("fresh zone %d: %+v", zi.Index, zi)
		}
	}
}

func TestSequentialWriteAndRead(t *testing.T) {
	tgt := newTarget(t)
	b := tgt.BlockSize()
	end, err := tgt.Write(0, 0, 0, blockOf(tgt, 0x11))
	if err != nil {
		t.Fatal(err)
	}
	end, err = tgt.Write(end, 0, int64(b), blockOf(tgt, 0x22))
	if err != nil {
		t.Fatal(err)
	}
	zi, _ := tgt.Zone(0)
	if zi.State != ZoneOpen || zi.WP != int64(2*b) {
		t.Fatalf("zone = %+v", zi)
	}
	got, _, err := tgt.Read(end, 0, 0, int64(2*b))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x11 || got[b] != 0x22 {
		t.Fatal("zone data mismatch")
	}
}

func TestSequentialWriteRequired(t *testing.T) {
	tgt := newTarget(t)
	// Writing anywhere but the WP violates ZNS semantics.
	if _, err := tgt.Write(0, 0, int64(tgt.BlockSize()), blockOf(tgt, 1)); !errors.Is(err, ErrWritePointer) {
		t.Fatalf("out-of-order write: %v", err)
	}
	if _, err := tgt.Write(0, 0, 0, make([]byte, 100)); !errors.Is(err, ErrAlignment) {
		t.Fatalf("misaligned write: %v", err)
	}
}

func TestZoneAppendReturnsOffsets(t *testing.T) {
	tgt := newTarget(t)
	b := int64(tgt.BlockSize())
	var offs []int64
	now := vclock.Time(0)
	for i := 0; i < 4; i++ {
		off, end, err := tgt.Append(now, 3, blockOf(tgt, byte(i)))
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
		now = end
	}
	// Appends land at strictly increasing, dense offsets.
	for i, off := range offs {
		if off != int64(i)*b {
			t.Fatalf("append %d landed at %d, want %d", i, off, int64(i)*b)
		}
	}
}

func TestZoneFillsAndFinishes(t *testing.T) {
	tgt := newTarget(t)
	cap := tgt.ZoneCapacity()
	b := int64(tgt.BlockSize())
	now := vclock.Time(0)
	for off := int64(0); off < cap; off += b {
		var err error
		if now, err = tgt.Write(now, 1, off, blockOf(tgt, byte(off/b))); err != nil {
			t.Fatalf("write at %d: %v", off, err)
		}
	}
	zi, _ := tgt.Zone(1)
	if zi.State != ZoneFull {
		t.Fatalf("state = %v, want full", zi.State)
	}
	if _, err := tgt.Write(now, 1, cap, blockOf(tgt, 1)); !errors.Is(err, ErrZoneState) {
		t.Fatalf("write to full zone: %v", err)
	}
	// All data survives.
	got, _, err := tgt.Read(now, 1, cap-b, b)
	if err != nil || got[0] != byte((cap-b)/b) {
		t.Fatalf("last block: %x %v", got[0], err)
	}
}

func TestResetCycle(t *testing.T) {
	tgt := newTarget(t)
	now, err := tgt.Write(0, 2, 0, blockOf(tgt, 0x77))
	if err != nil {
		t.Fatal(err)
	}
	now, err = tgt.Reset(now, 2)
	if err != nil {
		t.Fatal(err)
	}
	zi, _ := tgt.Zone(2)
	if zi.State != ZoneEmpty || zi.WP != 0 {
		t.Fatalf("after reset: %+v", zi)
	}
	if _, _, err := tgt.Read(now, 2, 0, int64(tgt.BlockSize())); !errors.Is(err, ErrUnwritten) {
		t.Fatalf("read after reset: %v", err)
	}
	// The zone accepts new writes from offset 0.
	if _, err := tgt.Write(now, 2, 0, blockOf(tgt, 0x88)); err != nil {
		t.Fatalf("write after reset: %v", err)
	}
}

func TestFinishPartialZone(t *testing.T) {
	tgt := newTarget(t)
	now, err := tgt.Write(0, 4, 0, blockOf(tgt, 0x5A))
	if err != nil {
		t.Fatal(err)
	}
	now, err = tgt.Finish(now, 4)
	if err != nil {
		t.Fatal(err)
	}
	zi, _ := tgt.Zone(4)
	if zi.State != ZoneFull {
		t.Fatalf("state = %v, want full", zi.State)
	}
	if _, err := tgt.Write(now, 4, zi.WP, blockOf(tgt, 1)); !errors.Is(err, ErrZoneState) {
		t.Fatalf("write to finished zone: %v", err)
	}
	got, _, err := tgt.Read(now, 4, 0, int64(tgt.BlockSize()))
	if err != nil || got[0] != 0x5A {
		t.Fatalf("finished zone data: %x %v", got[0], err)
	}
}

func TestReadValidation(t *testing.T) {
	tgt := newTarget(t)
	now, err := tgt.Write(0, 0, 0, blockOf(tgt, 1))
	if err != nil {
		t.Fatal(err)
	}
	b := int64(tgt.BlockSize())
	if _, _, err := tgt.Read(now, 0, 0, 2*b); !errors.Is(err, ErrUnwritten) {
		t.Fatalf("read past wp: %v", err)
	}
	if _, _, err := tgt.Read(now, 0, 1, b); !errors.Is(err, ErrAlignment) {
		t.Fatalf("misaligned read: %v", err)
	}
	if _, _, err := tgt.Read(now, 99, 0, b); !errors.Is(err, ErrZoneRange) {
		t.Fatalf("bad zone: %v", err)
	}
}

// Property: any sequence of appends then reads round-trips, and the WP
// always equals the number of appended blocks times the block size.
func TestZoneAppendProperty(t *testing.T) {
	tgt := newTarget(t)
	maxBlocks := int(tgt.ZoneCapacity()) / tgt.BlockSize()
	f := func(fills []byte) bool {
		idx := 7
		if _, err := tgt.Reset(0, idx); err != nil {
			return false
		}
		n := len(fills)
		if n > maxBlocks {
			n = maxBlocks
		}
		now := vclock.Time(0)
		for i := 0; i < n; i++ {
			off, end, err := tgt.Append(now, idx, blockOf(tgt, fills[i]))
			if err != nil || off != int64(i)*int64(tgt.BlockSize()) {
				return false
			}
			now = end
		}
		zi, _ := tgt.Zone(idx)
		if zi.WP != int64(n)*int64(tgt.BlockSize()) {
			return false
		}
		for i := 0; i < n; i++ {
			got, end, err := tgt.Read(now, idx, int64(i)*int64(tgt.BlockSize()), int64(tgt.BlockSize()))
			if err != nil || got[0] != fills[i] {
				return false
			}
			now = end
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestZoneIsolationAcrossGroups(t *testing.T) {
	// Writes to zones in different groups proceed without interference
	// (§2.3's isolation, inherited from the OCSSD group guarantee).
	tgt := newTarget(t)
	report := tgt.Report()
	var zoneA, zoneB int = -1, -1
	for _, zi := range report {
		if zoneA < 0 {
			zoneA = zi.Index
		} else if zi.Group != report[zoneA].Group {
			zoneB = zi.Index
			break
		}
	}
	if zoneB < 0 {
		t.Fatal("no cross-group zone pair")
	}
	// Sequential on one zone vs split across two groups.
	aloneEnd, err := tgt.Write(0, zoneA, 0, blockOf(tgt, 1))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := tgt.Write(0, zoneB, 0, blockOf(tgt, 2))
	if err != nil {
		t.Fatal(err)
	}
	both := vclock.Max(aloneEnd, e2)
	if float64(both) > 1.1*float64(aloneEnd) {
		t.Fatalf("cross-group zone writes interfered: %v vs %v", aloneEnd, both)
	}
}

// newCachelessTarget builds a target on a device without a write-back
// cache — the configuration whose cross-group writes commute.
func newCachelessTarget(t *testing.T) *Target {
	t.Helper()
	chip := nand.Geometry{
		Planes: 2, BlocksPerPlane: 8, PagesPerBlock: 12,
		SectorsPerPage: 4, SectorSize: 4096, Cell: nand.TLC,
	}
	geo := ocssd.Finish(ocssd.Geometry{
		Groups: 4, PUsPerGroup: 2, ChunksPerPU: 8, Chip: chip,
		ChannelMBps: 800, CacheMBps: 3200, CacheMB: 0, MaxOpenPerPU: 8,
	})
	dev, err := ocssd.New(geo, ocssd.Options{Seed: 1, PowerLossProtected: true})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := ox.NewController(ox.DefaultConfig(), dev)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := New(ctrl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

func TestConcurrentWriteSafeTracksCache(t *testing.T) {
	if newTarget(t).ConcurrentWriteSafe() {
		t.Fatal("cached device reported write-overlap safe")
	}
	if !newCachelessTarget(t).ConcurrentWriteSafe() {
		t.Fatal("cache-less device reported write-overlap unsafe")
	}
}

func TestZoneGroupImmutableMapping(t *testing.T) {
	tgt := newTarget(t)
	for _, zi := range tgt.Report() {
		g, ok := tgt.ZoneGroup(zi.Index)
		if !ok || g != zi.Group {
			t.Fatalf("zone %d: ZoneGroup = (%d,%v), report says group %d", zi.Index, g, ok, zi.Group)
		}
	}
	if _, ok := tgt.ZoneGroup(tgt.Zones()); ok {
		t.Fatal("out-of-range zone resolved a group")
	}
	if _, ok := tgt.ZoneGroup(-1); ok {
		t.Fatal("negative zone resolved a group")
	}
}

// TestConcurrentZonesDisjointGroups exercises the per-zone locking
// under -race: one goroutine per group appends, reads back and resets
// its own zone, and the virtual completion times must match a serial
// run of the same schedules exactly (cross-group timing commutes on a
// cache-less device).
func TestConcurrentZonesDisjointGroups(t *testing.T) {
	const rounds = 6
	type res struct {
		zone int
		r    int
		end  vclock.Time
	}
	schedule := func(tgt *Target, zone int, sink func(res)) error {
		data := blockOf(tgt, byte(zone))
		var now vclock.Time
		for r := 0; r < rounds; r++ {
			off, end, err := tgt.Append(now, zone, data)
			if err != nil {
				return err
			}
			if _, end, err = tgt.Read(end, zone, off, int64(len(data))); err != nil {
				return err
			}
			if r == rounds-1 {
				if end, err = tgt.Reset(end, zone); err != nil {
					return err
				}
			}
			sink(res{zone: zone, r: r, end: end})
			now = end
		}
		return nil
	}
	zonesFor := func(tgt *Target) []int {
		seen := map[int]bool{}
		var zones []int
		for _, zi := range tgt.Report() {
			if !seen[zi.Group] {
				seen[zi.Group] = true
				zones = append(zones, zi.Index)
			}
		}
		return zones
	}
	run := func(concurrent bool) map[res]bool {
		tgt := newCachelessTarget(t)
		out := make(map[res]bool)
		var mu sync.Mutex
		sink := func(x res) {
			mu.Lock()
			out[x] = true
			mu.Unlock()
		}
		zones := zonesFor(tgt)
		if !concurrent {
			for _, z := range zones {
				if err := schedule(tgt, z, sink); err != nil {
					t.Fatal(err)
				}
			}
			return out
		}
		var wg sync.WaitGroup
		for _, z := range zones {
			wg.Add(1)
			go func(z int) {
				defer wg.Done()
				if err := schedule(tgt, z, sink); err != nil {
					t.Error(err)
				}
			}(z)
		}
		wg.Wait()
		return out
	}
	serial := run(false)
	conc := run(true)
	if len(serial) != len(conc) || len(serial) == 0 {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(conc))
	}
	for x := range serial {
		if !conc[x] {
			t.Fatalf("serial completion %+v missing from concurrent run", x)
		}
	}
}
